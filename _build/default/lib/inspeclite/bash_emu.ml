let split_args command =
  let n = String.length command in
  let out = ref [] in
  let buf = Buffer.create 16 in
  let flush () =
    if Buffer.length buf > 0 then begin
      out := Buffer.contents buf :: !out;
      Buffer.clear buf
    end
  in
  let rec go i quote =
    if i >= n then flush ()
    else
      let c = command.[i] in
      match quote with
      | Some q -> if c = q then go (i + 1) None else (Buffer.add_char buf c; go (i + 1) quote)
      | None -> (
        match c with
        | ' ' | '\t' ->
          flush ();
          go (i + 1) None
        | '\'' | '"' -> go (i + 1) (Some c)
        | c ->
          Buffer.add_char buf c;
          go (i + 1) None)
  in
  go 0 None;
  List.rev !out

let split_pipeline command =
  (* Split on '|' outside quotes. *)
  let n = String.length command in
  let stages = ref [] in
  let buf = Buffer.create 32 in
  let rec go i quote =
    if i >= n then stages := Buffer.contents buf :: !stages
    else
      let c = command.[i] in
      match quote with
      | Some q ->
        Buffer.add_char buf c;
        go (i + 1) (if c = q then None else quote)
      | None ->
        if c = '|' then begin
          stages := Buffer.contents buf :: !stages;
          Buffer.clear buf;
          go (i + 1) None
        end
        else begin
          Buffer.add_char buf c;
          (match c with '\'' | '"' -> go (i + 1) (Some c) | _ -> go (i + 1) None)
        end
  in
  go 0 None;
  List.rev_map String.trim !stages

let lines s = if s = "" then [] else String.split_on_char '\n' s

let unlines = function
  | [] -> ""
  | ls -> String.concat "\n" ls

(* grep's BRE vs PCRE differences don't matter for the patterns the
   observed encodings use; everything compiles as PCRE. Patterns are
   cached the way a long-running InSpec process caches its profiles. *)
let regex_cache : (string, Re.re option) Hashtbl.t = Hashtbl.create 64

let compile_cached pattern =
  match Hashtbl.find_opt regex_cache pattern with
  | Some cached -> cached
  | None ->
    let compiled = try Some (Re.compile (Re.Pcre.re pattern)) with _ -> None in
    Hashtbl.add regex_cache pattern compiled;
    compiled

let grep ~pattern content =
  match compile_cached pattern with
  | Some re -> unlines (List.filter (fun l -> Re.execp re l) (lines content))
  | None -> ""

let take n ls =
  let rec go i = function
    | [] -> []
    | x :: rest -> if i >= n then [] else x :: go (i + 1) rest
  in
  go 0 ls

let run_stage frame stdin stage =
  match split_args stage with
  | "grep" :: rest -> (
    let rest = List.filter (fun a -> a <> "-E" && a <> "-e") rest in
    match rest with
    | [ pattern ] -> grep ~pattern stdin
    | [ pattern; file ] -> (
      match Frames.Frame.read frame file with
      | Some content -> grep ~pattern content
      | None -> "")
    | _ -> "")
  | [ "head"; flag ] when String.length flag > 1 && flag.[0] = '-' -> (
    match int_of_string_opt (String.sub flag 1 (String.length flag - 1)) with
    | Some n -> unlines (take n (lines stdin))
    | None -> "")
  | [ "tail"; flag ] when String.length flag > 1 && flag.[0] = '-' -> (
    match int_of_string_opt (String.sub flag 1 (String.length flag - 1)) with
    | Some n ->
      let ls = lines stdin in
      let len = List.length ls in
      unlines (List.filteri (fun i _ -> i >= len - n) ls)
    | None -> "")
  | [ "wc"; "-l" ] -> string_of_int (List.length (lines stdin))
  | [ "cut"; dflag; fflag ]
    when String.length dflag > 2 && String.sub dflag 0 2 = "-d"
         && String.length fflag > 2 && String.sub fflag 0 2 = "-f" -> (
    let delim = dflag.[2] in
    match int_of_string_opt (String.sub fflag 2 (String.length fflag - 2)) with
    | Some field ->
      lines stdin
      |> List.map (fun l ->
             match List.nth_opt (String.split_on_char delim l) (field - 1) with
             | Some cell -> cell
             | None -> "")
      |> unlines
    | None -> "")
  | [ "stat"; "-c"; fmt; file ] -> (
    match Frames.Frame.stat frame file with
    | None -> ""
    | Some f ->
      let buf = Buffer.create 16 in
      let n = String.length fmt in
      let rec go i =
        if i >= n then ()
        else if fmt.[i] = '%' && i + 1 < n then begin
          (match fmt.[i + 1] with
          | 'a' -> Buffer.add_string buf (Printf.sprintf "%o" f.Frames.File.mode)
          | 'u' -> Buffer.add_string buf (string_of_int f.Frames.File.uid)
          | 'g' -> Buffer.add_string buf (string_of_int f.Frames.File.gid)
          | 'U' -> Buffer.add_string buf f.Frames.File.owner
          | 'G' -> Buffer.add_string buf f.Frames.File.group
          | c -> Buffer.add_char buf c);
          go (i + 2)
        end
        else begin
          Buffer.add_char buf fmt.[i];
          go (i + 1)
        end
      in
      go 0;
      Buffer.contents buf)
  | "echo" :: rest -> String.concat " " rest
  | [ "cat"; file ] -> Option.value (Frames.Frame.read frame file) ~default:""
  | _ -> ""

let run frame command =
  List.fold_left (run_stage frame) "" (split_pipeline command)
