(** The "observed" Chef-Compliance execution path for the Table 2
    comparison: each abstract check is compiled to the bash-grep
    encoding the paper found in real Chef Compliance content, and the
    pipeline is executed by {!Bash_emu} with the extracted value
    compared in OCaml (the way InSpec's [should eq] would). *)

(** The bash command and comparison for one check (exposed so the
    renderer and the engine stay in sync). *)
type compiled = {
  check_id : string;
  command : string;
  accepts : string -> bool;  (** predicate over the pipeline stdout *)
}

val compile : Checkir.Check.t -> compiled

(** (check id, compliant) per check. *)
val run : Frames.Frame.t -> Checkir.Check.t list -> (string * bool) list

(** Build the equivalent declarative ("expected") {!Dsl.control} for a
    check — used to cross-validate DSL semantics against the observed
    path. *)
val to_dsl : Checkir.Check.t -> Dsl.control
