let resource_name file =
  match file with
  | "/etc/ssh/sshd_config" -> "sshd_config"
  | "/etc/sysctl.conf" -> "sysctl_conf"
  | _ -> Printf.sprintf "parse_config_file('%s')" file

let matcher_text = function
  | Checkir.Check.Values [ v ] -> Printf.sprintf "{ should eq %S }" v
  | Checkir.Check.Values vs ->
    Printf.sprintf "{ should match(/%s/) }" (String.concat "|" vs)
  | Checkir.Check.Pattern p -> Printf.sprintf "{ should match(/^(%s)$/) }" p

let expected (c : Checkir.Check.t) =
  let body =
    match c.Checkir.Check.target with
    | Checkir.Check.Key_value { file; key; expected; absent_pass; _ } ->
      let its_line =
        match (absent_pass, expected) with
        | true, Checkir.Check.Values [ "no" ] ->
          Printf.sprintf "    its('%s') { should_not eq \"yes\" }" key
        | true, Checkir.Check.Values [ "yes" ] ->
          Printf.sprintf "    its('%s') { should_not eq \"no\" }" key
        | _ -> Printf.sprintf "    its('%s') %s" key (matcher_text expected)
      in
      [ Printf.sprintf "  describe %s do" (resource_name file); its_line; "  end" ]
    | Checkir.Check.Line_present { file; regex } ->
      [
        Printf.sprintf "  describe file('%s') do" file;
        Printf.sprintf "    its('content') { should match(/%s/) }" regex;
        "  end";
      ]
    | Checkir.Check.Line_absent { file; regex } ->
      [
        Printf.sprintf "  describe file('%s') do" file;
        Printf.sprintf "    its('content') { should_not match(/%s/) }" regex;
        "  end";
      ]
    | Checkir.Check.File_mode { path; max_mode; owner } ->
      let uid, gid =
        match String.split_on_char ':' owner with [ u; g ] -> (u, g) | _ -> ("0", "0")
      in
      [
        Printf.sprintf "  describe file('%s') do" path;
        Printf.sprintf "    it { should_not be_more_permissive_than('%o') }" max_mode;
        Printf.sprintf "    its('uid') { should eq %s }" uid;
        Printf.sprintf "    its('gid') { should eq %s }" gid;
        "  end";
      ]
  in
  String.concat "\n"
    ([
       Printf.sprintf "control '%s' do" c.Checkir.Check.id;
       "  impact 1.0";
       Printf.sprintf "  title %S" c.Checkir.Check.title;
     ]
    @ body @ [ "end"; "" ])

let observed (c : Checkir.Check.t) =
  let compiled = Engine.compile c in
  let expectation =
    match c.Checkir.Check.target with
    | Checkir.Check.Key_value { expected = Checkir.Check.Values [ v ]; _ } ->
      Printf.sprintf "    it { should eq %S }" v
    | Checkir.Check.Key_value { expected = Checkir.Check.Values vs; _ } ->
      Printf.sprintf "    it { should match(/^(%s)$/) }" (String.concat "|" vs)
    | Checkir.Check.Key_value { expected = Checkir.Check.Pattern p; _ } ->
      Printf.sprintf "    it { should match(/^(%s)$/) }" p
    | Checkir.Check.Line_present _ -> "    it { should_not eq \"\" }"
    | Checkir.Check.Line_absent _ -> "    it { should eq \"\" }"
    | Checkir.Check.File_mode _ -> "    it { should match(/^[0-7]+ \\d+:\\d+$/) }"
  in
  let extractor =
    match c.Checkir.Check.target with
    | Checkir.Check.Key_value _ -> ".stdout.to_s.[](/\\s*\\S+\\s+(.+?)\\s*(#.*)?$/, 1)"
    | _ -> ".stdout.to_s"
  in
  String.concat "\n"
    [
      Printf.sprintf "control \"xccdf_org.cisecurity.benchmarks_rule_%s\"  do" c.Checkir.Check.id;
      Printf.sprintf "  title %S" c.Checkir.Check.title;
      Printf.sprintf "  desc %S"
        (if c.Checkir.Check.description = "" then c.Checkir.Check.title else c.Checkir.Check.description);
      "  impact 1.0";
      Printf.sprintf "  describe bash(%S)%s do" compiled.command extractor;
      expectation;
      "  end";
      "end";
      "";
    ]

let profile ~style checks =
  let render = match style with `Expected -> expected | `Observed -> observed in
  String.concat "\n" (List.map render checks)
