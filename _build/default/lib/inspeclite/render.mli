(** Render checks as InSpec Ruby source, in both forms the paper's
    Listing 6 contrasts: the {e expected} declarative encoding (6 lines
    for PermitRootLogin) and the {e observed} Chef-Compliance bash
    encoding (7 lines). Used for the specification-size comparison. *)

val expected : Checkir.Check.t -> string
val observed : Checkir.Check.t -> string

(** A whole profile file. *)
val profile : style:[ `Expected | `Observed ] -> Checkir.Check.t list -> string
