type compiled = {
  check_id : string;
  command : string;
  accepts : string -> bool;
}

let value_re = Re.compile (Re.Pcre.re "^\\s*\\S+\\s+(.+?)\\s*$")

(* Extract the value column of a "Key value" line, the way the observed
   encoding's `.[](/\s*\S+\s+(.+?)\s*$/, 1)` does. *)
let extract_space_value line =
  match Re.exec_opt value_re line with
  | Some g -> Re.Group.get g 1
  | None -> ""

let extract_equals_value line =
  match String.index_opt line '=' with
  | Some i -> String.trim (String.sub line (i + 1) (String.length line - i - 1))
  | None -> ""

let expected_ok expected value =
  match expected with
  | Checkir.Check.Values vs -> List.mem value vs
  | Checkir.Check.Pattern p -> (
    match Re.execp (Re.compile (Re.whole_string (Re.Pcre.re p))) value with
    | m -> m
    | exception _ -> false)

let compile (c : Checkir.Check.t) =
  match c.Checkir.Check.target with
  | Checkir.Check.Key_value { file; key; sep; expected; absent_pass } ->
    let command =
      match sep with
      | Checkir.Check.Space -> Printf.sprintf "grep '^\\s*%s\\s' %s | head -1" key file
      | Checkir.Check.Equals -> Printf.sprintf "grep '^\\s*%s\\s*=' %s | head -1" key file
    in
    let extract =
      match sep with
      | Checkir.Check.Space -> extract_space_value
      | Checkir.Check.Equals -> extract_equals_value
    in
    {
      check_id = c.Checkir.Check.id;
      command;
      accepts =
        (fun stdout ->
          if stdout = "" then absent_pass else expected_ok expected (extract stdout));
    }
  | Checkir.Check.Line_present { file; regex } ->
    {
      check_id = c.Checkir.Check.id;
      command = Printf.sprintf "grep -E '%s' %s" regex file;
      accepts = (fun stdout -> stdout <> "");
    }
  | Checkir.Check.Line_absent { file; regex } ->
    {
      check_id = c.Checkir.Check.id;
      command = Printf.sprintf "grep -E '%s' %s" regex file;
      accepts = (fun stdout -> stdout = "");
    }
  | Checkir.Check.File_mode { path; max_mode; owner } ->
    {
      check_id = c.Checkir.Check.id;
      command = Printf.sprintf "stat -c '%%a %%u:%%g' %s" path;
      accepts =
        (fun stdout ->
          match String.index_opt stdout ' ' with
          | None -> false
          | Some i ->
            let mode_text = String.sub stdout 0 i in
            let owner_text = String.sub stdout (i + 1) (String.length stdout - i - 1) in
            (match int_of_string_opt ("0o" ^ mode_text) with
            | Some mode -> mode land lnot max_mode land 0o7777 = 0 && String.trim owner_text = owner
            | None -> false));
    }

let run frame checks =
  List.map
    (fun check ->
      let compiled = compile check in
      (compiled.check_id, compiled.accepts (Bash_emu.run frame compiled.command)))
    checks

let to_dsl (c : Checkir.Check.t) =
  let describes =
    match c.Checkir.Check.target with
    | Checkir.Check.Key_value { file; key; sep; expected; absent_pass } ->
      let matcher =
        match expected with
        | Checkir.Check.Values [ v ] -> Dsl.Eq v
        | Checkir.Check.Values vs -> Dsl.Be_in vs
        | Checkir.Check.Pattern p -> Dsl.Match ("^(" ^ p ^ ")$")
      in
      let tests =
        (* An absent secure-by-default key passes; express it as the
           negated expectation on the insecure value, which also passes
           when the key is missing. *)
        match (absent_pass, expected) with
        | true, Checkir.Check.Values [ "no" ] -> [ Dsl.its key ~negate:true (Dsl.Eq "yes") ]
        | true, Checkir.Check.Values [ "yes" ] -> [ Dsl.its key ~negate:true (Dsl.Eq "no") ]
        | _ -> [ Dsl.its key matcher ]
      in
      [ Dsl.describe (Dsl.Kv_file { file; sep }) tests ]
    | Checkir.Check.Line_present { file; regex } ->
      [
        Dsl.describe (Dsl.Command (Printf.sprintf "grep -E '%s' %s" regex file))
          [ Dsl.its "exit_status" (Dsl.Eq "0") ];
      ]
    | Checkir.Check.Line_absent { file; regex } ->
      [
        Dsl.describe (Dsl.Command (Printf.sprintf "grep -E '%s' %s" regex file))
          [ Dsl.its "exit_status" (Dsl.Eq "1") ];
      ]
    | Checkir.Check.File_mode { path; max_mode; owner } ->
      let uid, gid =
        match String.split_on_char ':' owner with
        | [ u; g ] -> (u, g)
        | _ -> ("0", "0")
      in
      [
        Dsl.describe (Dsl.File_resource path)
          [
            Dsl.its "uid" (Dsl.Eq uid);
            Dsl.its "gid" (Dsl.Eq gid);
            Dsl.its "mode" (Dsl.Mode_max max_mode);
          ];
      ]
  in
  Dsl.control ~id:c.Checkir.Check.id ~title:c.Checkir.Check.title describes
