lib/scap/oval.ml: Buffer Checkir Frames Hashtbl List Option Printf Re Result String Xmllite
