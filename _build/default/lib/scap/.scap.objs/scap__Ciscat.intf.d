lib/scap/ciscat.mli: Frames
