lib/scap/oval.mli: Checkir Frames Xmllite
