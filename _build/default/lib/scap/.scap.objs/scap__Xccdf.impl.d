lib/scap/xccdf.ml: Checkir List Option Oval Printf Result Xmllite
