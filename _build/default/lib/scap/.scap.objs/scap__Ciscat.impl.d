lib/scap/ciscat.ml: Char List Printf String Xccdf
