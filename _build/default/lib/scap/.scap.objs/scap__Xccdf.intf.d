lib/scap/xccdf.mli: Checkir Frames
