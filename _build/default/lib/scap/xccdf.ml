type rule = {
  rule_id : string;
  title : string;
  description : string;
  severity : string;
  definition_ref : string;
  selected : bool;
}

type benchmark = {
  benchmark_id : string;
  rules : rule list;
}

let rule_of_check (c : Checkir.Check.t) =
  {
    rule_id = Printf.sprintf "xccdf_org.cis.content_rule_%s" c.Checkir.Check.id;
    title = c.Checkir.Check.title;
    description = c.Checkir.Check.description;
    severity = "medium";
    definition_ref = Printf.sprintf "oval:%s:def:1" c.Checkir.Check.id;
    selected = true;
  }

let of_checks ~id checks = { benchmark_id = id; rules = List.map rule_of_check checks }

let el = Xmllite.element
let txt ?(attrs = []) tag s = Xmllite.Element (el tag ~attrs ~children:[ Xmllite.text_child s ])

let rule_element r =
  Xmllite.Element
    (el "Rule"
       ~attrs:[ ("id", r.rule_id); ("selected", "false"); ("severity", r.severity) ]
       ~children:
         [
           txt "title" ~attrs:[ ("xml:lang", "en-US") ] r.title;
           txt "description" ~attrs:[ ("xml:lang", "en-US") ]
             (if r.description = "" then r.title else r.description);
           txt "rationale" ~attrs:[ ("xml:lang", "en-US") ]
             "Required by the benchmark profile this rule belongs to.";
           Xmllite.Element
             (el "reference"
                ~attrs:[ ("href", "https://benchmarks.cisecurity.org/") ]
                ~children:[ Xmllite.text_child "CIS" ]);
           Xmllite.Element
             (el "check"
                ~attrs:[ ("system", "http://oval.mitre.org/XMLSchema/oval-definitions-5") ]
                ~children:
                  [
                    Xmllite.Element
                      (el "check-content-ref"
                         ~attrs:[ ("name", r.definition_ref); ("href", "oval-definitions.xml") ]);
                  ]);
         ])

let to_xml b =
  let selects =
    List.filter_map
      (fun r ->
        if r.selected then
          Some (Xmllite.Element (el "select" ~attrs:[ ("idref", r.rule_id); ("selected", "true") ]))
        else None)
      b.rules
  in
  let root =
    el "Benchmark"
      ~attrs:[ ("id", b.benchmark_id); ("xmlns", "http://checklists.nist.gov/xccdf/1.2") ]
      ~children:
        (Xmllite.Element (el "Profile" ~attrs:[ ("id", b.benchmark_id ^ "_profile") ] ~children:selects)
         :: List.map rule_element b.rules)
  in
  Xmllite.to_string root

let rule_to_xml check =
  let b = of_checks ~id:"single" [ check ] in
  let oval_doc = Oval.of_checks [ check ] in
  (* The per-rule spec, as counted in Listing 6: select + Rule + the OVAL
     definition/test/object it references. *)
  let rule = List.hd b.rules in
  let select =
    Xmllite.Element (el "select" ~attrs:[ ("idref", rule.rule_id); ("selected", "true") ])
  in
  let oval_parts =
    List.map Oval.definition_to_xml oval_doc.Oval.definitions
    @ List.concat_map Oval.test_to_xml oval_doc.Oval.tests
  in
  Xmllite.to_string (el "fragment" ~children:((select :: [ rule_element rule ]) @ oval_parts))

let parse xml =
  match Xmllite.parse xml with
  | Error e -> Error (Xmllite.error_to_string e)
  | Ok root ->
    if root.Xmllite.tag <> "Benchmark" then
      Error (Printf.sprintf "expected <Benchmark>, got <%s>" root.Xmllite.tag)
    else
      let selected_ids =
        Xmllite.descendants "select" root
        |> List.filter_map (fun s ->
               if Xmllite.attr "selected" s = Some "true" then Xmllite.attr "idref" s else None)
      in
      let rules =
        Xmllite.descendants "Rule" root
        |> List.filter_map (fun r ->
               match Xmllite.attr "id" r with
               | None -> None
               | Some rule_id ->
                 let text_of tag = Option.fold ~none:"" ~some:Xmllite.text (Xmllite.find tag r) in
                 let definition_ref =
                   match Xmllite.find "check" r with
                   | Some c -> (
                     match Xmllite.find "check-content-ref" c with
                     | Some ref_ -> Option.value (Xmllite.attr "name" ref_) ~default:""
                     | None -> "")
                   | None -> ""
                 in
                 Some
                   {
                     rule_id;
                     title = text_of "title";
                     description = text_of "description";
                     severity = Option.value (Xmllite.attr "severity" r) ~default:"medium";
                     definition_ref;
                     selected = List.mem rule_id selected_ids;
                   })
      in
      Ok { benchmark_id = Option.value (Xmllite.attr "id" root) ~default:""; rules }

let ( let* ) = Result.bind

let run ~benchmark_xml ~oval_xml frame =
  let* benchmark = parse benchmark_xml in
  let* oval = Oval.parse oval_xml in
  let selected = List.filter (fun r -> r.selected) benchmark.rules in
  Ok
    (List.map
       (fun r ->
         let compliant =
           match
             List.find_opt (fun (d : Oval.definition) -> d.Oval.def_id = r.definition_ref)
               oval.Oval.definitions
           with
           | Some d -> Oval.eval_definition oval frame d
           | None -> false
         in
         (r.rule_id, compliant))
       selected)
