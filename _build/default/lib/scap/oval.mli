(** OVAL subset: generation of definition documents from abstract
    checks, parsing them back, and evaluation against configuration
    frames — the machinery behind the OpenSCAP and CIS-CAT columns of
    Table 2.

    Supported constructs (the ones the paper's Listing 6 exemplifies):
    [ind:textfilecontent54_test/_object] with [pattern match] operation
    and [check_existence] of [at_least_one_exists] / [none_exist];
    [unix:file_test/_object/_state] with uid/gid and a mode ceiling;
    [definition/criteria/criterion] with AND/OR operators and [negate].

    OCaml's [Re] has no negative lookahead, so checks whose CIS content
    would use one (e.g. "X11Forwarding set to anything but no") are
    generated in the equivalent [none_exist]-over-bad-values form, which
    is also how half the real SSG content is written. *)

type existence =
  | At_least_one
  | None_exist

type test =
  | Text_content of { test_id : string; filepath : string; pattern : string; existence : existence }
  | File_attrs of { test_id : string; filepath : string; uid : int; gid : int; mode_max : int }

type criteria =
  | Criterion of { test_ref : string; negate : bool }
  | Operator of { op : [ `And | `Or ]; negate : bool; children : criteria list }

type definition = {
  def_id : string;
  title : string;
  description : string;
  criteria : criteria;
}

type doc = {
  definitions : definition list;
  tests : test list;
}

(** Compile a check into OVAL constructs with ids derived from its
    checklist id. *)
val of_check : Checkir.Check.t -> definition * test list

val of_checks : Checkir.Check.t list -> doc

(** Serialize to an [oval_definitions] XML document. *)
val to_xml : doc -> string

(** Individual node renderings, for embedding in XCCDF fragments. *)
val definition_to_xml : definition -> Xmllite.t

val test_to_xml : test -> Xmllite.t list

(** Parse a (generated-shape) OVAL document. *)
val parse : string -> (doc, string) result

(** Evaluate one definition: [true] = compliant. *)
val eval_definition : doc -> Frames.Frame.t -> definition -> bool

(** Evaluate everything: (definition id, compliant). *)
val evaluate : doc -> Frames.Frame.t -> (string * bool) list
