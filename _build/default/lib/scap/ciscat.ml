let default_startup_units = 400

(* One unit of "initialization": build and re-digest a license-manifest
   string, the way a commercial assessor validates its entitlement
   before doing any work. Deterministic, allocation-heavy, and — like
   the real thing — completely independent of the rule count. *)
let license_blob =
  String.concat "\n"
    (List.init 64 (fun i ->
         Printf.sprintf "entitlement.%02d = ciscat-pro/assessor/%d/term-odd%d" i (i * 7919) (i mod 9)))

let startup_unit () =
  let digest = ref 5381 in
  String.iter (fun c -> digest := (!digest * 33) lxor Char.code c) license_blob;
  (* Re-parse the blob the way a properties loader would. *)
  let entries =
    String.split_on_char '\n' license_blob
    |> List.filter_map (fun line ->
           match String.index_opt line '=' with
           | Some i -> Some (String.trim (String.sub line 0 i))
           | None -> None)
  in
  !digest + List.length entries

let pay_startup units =
  let acc = ref 0 in
  for _ = 1 to units do
    acc := !acc + startup_unit ()
  done;
  ignore !acc

let run ?(startup_units = default_startup_units) ~benchmark_xml ~oval_xml frame =
  pay_startup startup_units;
  Xccdf.run ~benchmark_xml ~oval_xml frame
