(** XCCDF benchmark documents: the checklist layer above OVAL
    (paper Listing 6 shows the [<Rule>] / [<select>] shape).

    A benchmark bundles Rule elements — title, description, rationale,
    reference, and a check-content-ref into an OVAL definition — plus a
    Profile of [<select>] elements switching rules on. [run] is the
    OpenSCAP-equivalent entry: parse both documents, resolve selected
    rules to OVAL definitions, evaluate. *)

type rule = {
  rule_id : string;
  title : string;
  description : string;
  severity : string;
  definition_ref : string;  (** OVAL definition id *)
  selected : bool;
}

type benchmark = {
  benchmark_id : string;
  rules : rule list;
}

(** Generate the benchmark document for a check list (each check becomes
    one selected Rule referencing its generated OVAL definition). *)
val of_checks : id:string -> Checkir.Check.t list -> benchmark

val to_xml : benchmark -> string
val parse : string -> (benchmark, string) result

(** Per-rule XCCDF+OVAL rendering, for the Listing 6 line counts. *)
val rule_to_xml : Checkir.Check.t -> string

(** Full OpenSCAP-style evaluation: (rule id, compliant) for every
    selected rule. *)
val run : benchmark_xml:string -> oval_xml:string -> Frames.Frame.t -> ((string * bool) list, string) result
