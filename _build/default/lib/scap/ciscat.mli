(** A CIS-CAT stand-in.

    CIS-CAT is closed source; the paper measures it at 14.5 s for the
    same 40 rules the other engines run in ≤ 2 s and hypothesizes the
    overhead is "JVM overhead, or related to some license checking
    during initialization" rather than XCCDF/OVAL itself (OpenSCAP uses
    the same formats and is the fastest engine measured).

    This model therefore reuses the {!Oval}/{!Xccdf} machinery and adds
    an explicit, deterministic startup cost: a busy-work loop sized by
    [startup_cost] calibrated so the startup dominates evaluation by
    roughly the paper's ratio. The substitution is recorded in
    DESIGN.md. *)

(** Units of synthetic startup work (each unit re-parses a small license
    manifest and hashes it, the shape of "license checking during
    initialization"). *)
val default_startup_units : int

(** [run ~startup_units ~benchmark_xml ~oval_xml frame] — same contract
    as {!Xccdf.run}, after paying the startup cost. *)
val run :
  ?startup_units:int ->
  benchmark_xml:string ->
  oval_xml:string ->
  Frames.Frame.t ->
  ((string * bool) list, string) result
