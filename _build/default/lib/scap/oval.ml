type existence =
  | At_least_one
  | None_exist

type test =
  | Text_content of { test_id : string; filepath : string; pattern : string; existence : existence }
  | File_attrs of { test_id : string; filepath : string; uid : int; gid : int; mode_max : int }

type criteria =
  | Criterion of { test_ref : string; negate : bool }
  | Operator of { op : [ `And | `Or ]; negate : bool; children : criteria list }

type definition = {
  def_id : string;
  title : string;
  description : string;
  criteria : criteria;
}

type doc = {
  definitions : definition list;
  tests : test list;
}

(* ------------------------------------------------------------------ *)
(* Generation from checks                                              *)
(* ------------------------------------------------------------------ *)

let escape_value v =
  (* Literal config values become regex alternatives. *)
  let buf = Buffer.create (String.length v + 4) in
  String.iter
    (fun c ->
      (match c with
      | '.' | '\\' | '+' | '*' | '?' | '[' | ']' | '^' | '$' | '(' | ')' | '{' | '}' | '|' | '/' ->
        Buffer.add_char buf '\\'
      | _ -> ());
      Buffer.add_char buf c)
    v;
  Buffer.contents buf

let kv_pattern ~sep ~key body =
  match sep with
  | Checkir.Check.Space -> Printf.sprintf "^\\s*%s\\s+(%s)\\s*$" (escape_value key) body
  | Checkir.Check.Equals -> Printf.sprintf "^\\s*%s\\s*=\\s*(%s)\\s*$" (escape_value key) body

(* The bad-value complement for boolean-ish expectations; [None] when no
   complement is known (then the positive at_least_one form is used). *)
let complement = function
  | Checkir.Check.Values [ "no" ] -> Some "yes"
  | Checkir.Check.Values [ "yes" ] -> Some "no"
  | Checkir.Check.Values _ | Checkir.Check.Pattern _ -> None

let of_check (c : Checkir.Check.t) =
  let def_id = Printf.sprintf "oval:%s:def:1" c.Checkir.Check.id in
  let test_id = Printf.sprintf "oval:%s:tst:1" c.Checkir.Check.id in
  let tests, criteria =
    match c.Checkir.Check.target with
    | Checkir.Check.Key_value { file; key; sep; expected; absent_pass } ->
      if absent_pass then
        let bad =
          match complement expected with
          | Some bad -> bad
          | None -> (
            (* Fall back to "present and good" when no complement. *)
            match expected with
            | Checkir.Check.Values vs -> String.concat "|" (List.map escape_value vs)
            | Checkir.Check.Pattern p -> p)
        in
        let existence = if complement expected <> None then None_exist else At_least_one in
        ( [ Text_content { test_id; filepath = file; pattern = kv_pattern ~sep ~key bad; existence } ],
          Criterion { test_ref = test_id; negate = false } )
      else
        let body =
          match expected with
          | Checkir.Check.Values vs -> String.concat "|" (List.map escape_value vs)
          | Checkir.Check.Pattern p -> p
        in
        ( [ Text_content
              { test_id; filepath = file; pattern = kv_pattern ~sep ~key body; existence = At_least_one } ],
          Criterion { test_ref = test_id; negate = false } )
    | Checkir.Check.Line_present { file; regex } ->
      ( [ Text_content { test_id; filepath = file; pattern = regex; existence = At_least_one } ],
        Criterion { test_ref = test_id; negate = false } )
    | Checkir.Check.Line_absent { file; regex } ->
      ( [ Text_content { test_id; filepath = file; pattern = regex; existence = None_exist } ],
        Criterion { test_ref = test_id; negate = false } )
    | Checkir.Check.File_mode { path; max_mode; owner } ->
      let uid, gid =
        match String.split_on_char ':' owner with
        | [ u; g ] -> (int_of_string u, int_of_string g)
        | _ -> (0, 0)
      in
      ( [ File_attrs { test_id; filepath = path; uid; gid; mode_max = max_mode } ],
        Criterion { test_ref = test_id; negate = false } )
  in
  ( { def_id; title = c.Checkir.Check.title; description = c.Checkir.Check.description; criteria },
    tests )

let of_checks checks =
  let pairs = List.map of_check checks in
  { definitions = List.map fst pairs; tests = List.concat_map snd pairs }

(* ------------------------------------------------------------------ *)
(* XML serialization                                                   *)
(* ------------------------------------------------------------------ *)

let existence_to_string = function
  | At_least_one -> "at_least_one_exists"
  | None_exist -> "none_exist"

let el = Xmllite.element
let txt tag s = Xmllite.Element (el tag ~children:[ Xmllite.text_child s ])

let rec criteria_to_xml = function
  | Criterion { test_ref; negate } ->
    let attrs = [ ("test_ref", test_ref) ] in
    let attrs = if negate then ("negate", "true") :: attrs else attrs in
    Xmllite.Element (el "criterion" ~attrs)
  | Operator { op; negate; children } ->
    let attrs = [ ("operator", match op with `And -> "AND" | `Or -> "OR") ] in
    let attrs = if negate then ("negate", "true") :: attrs else attrs in
    Xmllite.Element (el "criteria" ~attrs ~children:(List.map criteria_to_xml children))

let definition_to_xml d =
  Xmllite.Element
    (el "definition"
       ~attrs:[ ("class", "compliance"); ("id", d.def_id); ("version", "1") ]
       ~children:
         [
           Xmllite.Element
             (el "metadata" ~children:[ txt "title" d.title; txt "description" d.description ]);
           criteria_to_xml d.criteria;
         ])

(* Objects and states are split out the way real OVAL content is: each
   test references an object (and optionally a state) by id. *)
let test_to_xml t =
  match t with
  | Text_content { test_id; filepath; pattern; existence } ->
    let obj_id = test_id ^ ":obj" in
    [
      Xmllite.Element
        (el "ind:textfilecontent54_test"
           ~attrs:
             [
               ("id", test_id); ("check", "all"); ("check_existence", existence_to_string existence);
             ]
           ~children:[ Xmllite.Element (el "ind:object" ~attrs:[ ("object_ref", obj_id) ]) ]);
      Xmllite.Element
        (el "ind:textfilecontent54_object" ~attrs:[ ("id", obj_id); ("version", "1") ]
           ~children:
             [
               txt "ind:filepath" filepath;
               Xmllite.Element
                 (el "ind:pattern"
                    ~attrs:[ ("operation", "pattern match") ]
                    ~children:[ Xmllite.text_child pattern ]);
               Xmllite.Element
                 (el "ind:instance" ~attrs:[ ("datatype", "int") ] ~children:[ Xmllite.text_child "1" ]);
             ]);
    ]
  | File_attrs { test_id; filepath; uid; gid; mode_max } ->
    let obj_id = test_id ^ ":obj" and ste_id = test_id ^ ":ste" in
    [
      Xmllite.Element
        (el "unix:file_test"
           ~attrs:[ ("id", test_id); ("check", "all") ]
           ~children:
             [
               Xmllite.Element (el "unix:object" ~attrs:[ ("object_ref", obj_id) ]);
               Xmllite.Element (el "unix:state" ~attrs:[ ("state_ref", ste_id) ]);
             ]);
      Xmllite.Element (el "unix:file_object" ~attrs:[ ("id", obj_id) ] ~children:[ txt "unix:filepath" filepath ]);
      Xmllite.Element
        (el "unix:file_state" ~attrs:[ ("id", ste_id) ]
           ~children:
             [
               txt "unix:uid" (string_of_int uid);
               txt "unix:gid" (string_of_int gid);
               txt "unix:mode_max" (Printf.sprintf "%o" mode_max);
             ]);
    ]

let to_xml doc =
  let root =
    el "oval_definitions"
      ~attrs:[ ("xmlns", "http://oval.mitre.org/XMLSchema/oval-definitions-5") ]
      ~children:
        [
          Xmllite.Element (el "definitions" ~children:(List.map definition_to_xml doc.definitions));
          Xmllite.Element (el "tests_objects_states" ~children:(List.concat_map test_to_xml doc.tests));
        ]
  in
  Xmllite.to_string root

(* ------------------------------------------------------------------ *)
(* Parsing                                                             *)
(* ------------------------------------------------------------------ *)

let ( let* ) = Result.bind

let rec parse_criteria element =
  match element.Xmllite.tag with
  | "criterion" -> (
    match Xmllite.attr "test_ref" element with
    | Some test_ref ->
      Ok (Criterion { test_ref; negate = Xmllite.attr "negate" element = Some "true" })
    | None -> Error "criterion without test_ref")
  | "criteria" ->
    let op = if Xmllite.attr "operator" element = Some "OR" then `Or else `And in
    let negate = Xmllite.attr "negate" element = Some "true" in
    let rec go acc = function
      | [] -> Ok (List.rev acc)
      | child :: rest ->
        let* c = parse_criteria child in
        go (c :: acc) rest
    in
    let* children = go [] (Xmllite.elements element) in
    Ok (Operator { op; negate; children })
  | other -> Error (Printf.sprintf "unexpected element <%s> in criteria" other)

let parse_definition element =
  match Xmllite.attr "id" element with
  | None -> Error "definition without id"
  | Some def_id -> (
    let title, description =
      match Xmllite.find "metadata" element with
      | Some m ->
        ( Option.fold ~none:"" ~some:Xmllite.text (Xmllite.find "title" m),
          Option.fold ~none:"" ~some:Xmllite.text (Xmllite.find "description" m) )
      | None -> ("", "")
    in
    let crit =
      List.find_opt
        (fun e -> e.Xmllite.tag = "criteria" || e.Xmllite.tag = "criterion")
        (Xmllite.elements element)
    in
    match crit with
    | None -> Error (Printf.sprintf "definition %s without criteria" def_id)
    | Some crit ->
      let* criteria = parse_criteria crit in
      Ok { def_id; title; description; criteria })

let parse_tests root =
  let find_by_id tag id =
    Xmllite.descendants tag root |> List.find_opt (fun e -> Xmllite.attr "id" e = Some id)
  in
  let text_tests =
    Xmllite.descendants "ind:textfilecontent54_test" root
    |> List.filter_map (fun t ->
           let parsed =
             let* test_id = Option.to_result ~none:"test without id" (Xmllite.attr "id" t) in
             let existence =
               if Xmllite.attr "check_existence" t = Some "none_exist" then None_exist else At_least_one
             in
             let* obj_ref =
               Xmllite.find "ind:object" t
               |> Option.map (Xmllite.attr "object_ref")
               |> Option.join
               |> Option.to_result ~none:(test_id ^ ": no object_ref")
             in
             let* obj =
               Option.to_result ~none:(obj_ref ^ ": unresolved object")
                 (find_by_id "ind:textfilecontent54_object" obj_ref)
             in
             let filepath = Option.fold ~none:"" ~some:Xmllite.text (Xmllite.find "ind:filepath" obj) in
             let pattern = Option.fold ~none:"" ~some:Xmllite.text (Xmllite.find "ind:pattern" obj) in
             Ok (Text_content { test_id; filepath; pattern; existence })
           in
           Result.to_option parsed)
  in
  let file_tests =
    Xmllite.descendants "unix:file_test" root
    |> List.filter_map (fun t ->
           let parsed =
             let* test_id = Option.to_result ~none:"test without id" (Xmllite.attr "id" t) in
             let* obj_ref =
               Xmllite.find "unix:object" t
               |> Option.map (Xmllite.attr "object_ref")
               |> Option.join
               |> Option.to_result ~none:(test_id ^ ": no object_ref")
             in
             let* ste_ref =
               Xmllite.find "unix:state" t
               |> Option.map (Xmllite.attr "state_ref")
               |> Option.join
               |> Option.to_result ~none:(test_id ^ ": no state_ref")
             in
             let* obj =
               Option.to_result ~none:(obj_ref ^ ": unresolved object") (find_by_id "unix:file_object" obj_ref)
             in
             let* ste =
               Option.to_result ~none:(ste_ref ^ ": unresolved state") (find_by_id "unix:file_state" ste_ref)
             in
             let filepath = Option.fold ~none:"" ~some:Xmllite.text (Xmllite.find "unix:filepath" obj) in
             let num tag default =
               match Xmllite.find tag ste with
               | Some e -> Option.value (int_of_string_opt (Xmllite.text e)) ~default
               | None -> default
             in
             let mode_max =
               match Xmllite.find "unix:mode_max" ste with
               | Some e -> Option.value (int_of_string_opt ("0o" ^ Xmllite.text e)) ~default:0o777
               | None -> 0o777
             in
             Ok (File_attrs { test_id; filepath; uid = num "unix:uid" 0; gid = num "unix:gid" 0; mode_max })
           in
           Result.to_option parsed)
  in
  text_tests @ file_tests

let parse xml =
  match Xmllite.parse xml with
  | Error e -> Error (Xmllite.error_to_string e)
  | Ok root ->
    if root.Xmllite.tag <> "oval_definitions" then
      Error (Printf.sprintf "expected <oval_definitions>, got <%s>" root.Xmllite.tag)
    else
      let rec go acc = function
        | [] -> Ok (List.rev acc)
        | e :: rest ->
          let* d = parse_definition e in
          go (d :: acc) rest
      in
      let* definitions = go [] (Xmllite.descendants "definition" root) in
      Ok { definitions; tests = parse_tests root }

(* ------------------------------------------------------------------ *)
(* Evaluation                                                          *)
(* ------------------------------------------------------------------ *)

let lines_of frame path =
  match Frames.Frame.read frame path with
  | None -> []
  | Some content -> String.split_on_char '\n' content

(* Compiled-pattern cache: OpenSCAP compiles each OVAL pattern once per
   loaded document; re-compiling per evaluation would misrepresent it. *)
let regex_cache : (string, Re.re option) Hashtbl.t = Hashtbl.create 64

let compile_cached pattern =
  match Hashtbl.find_opt regex_cache pattern with
  | Some cached -> cached
  | None ->
    let compiled = try Some (Re.compile (Re.Pcre.re pattern)) with _ -> None in
    Hashtbl.add regex_cache pattern compiled;
    compiled

let eval_test frame = function
  | Text_content { filepath; pattern; existence; _ } -> (
    match compile_cached pattern with
    | None -> false
    | Some re ->
      let matched = List.exists (fun line -> Re.execp re line) (lines_of frame filepath) in
      (match existence with At_least_one -> matched | None_exist -> not matched))
  | File_attrs { filepath; uid; gid; mode_max; _ } -> (
    match Frames.Frame.stat frame filepath with
    | None -> false
    | Some f ->
      f.Frames.File.uid = uid && f.Frames.File.gid = gid
      && f.Frames.File.mode land lnot mode_max land 0o7777 = 0)

let find_test doc test_ref =
  List.find_opt
    (fun t ->
      match t with
      | Text_content { test_id; _ } | File_attrs { test_id; _ } -> String.equal test_id test_ref)
    doc.tests

let rec eval_criteria doc frame = function
  | Criterion { test_ref; negate } ->
    let outcome = match find_test doc test_ref with Some t -> eval_test frame t | None -> false in
    if negate then not outcome else outcome
  | Operator { op; negate; children } ->
    let outcomes = List.map (eval_criteria doc frame) children in
    let combined =
      match op with
      | `And -> List.for_all (fun b -> b) outcomes
      | `Or -> List.exists (fun b -> b) outcomes
    in
    if negate then not combined else combined

let eval_definition doc frame d = eval_criteria doc frame d.criteria

let evaluate doc frame =
  List.map (fun d -> (d.def_id, eval_definition doc frame d)) doc.definitions
