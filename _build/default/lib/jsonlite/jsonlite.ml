type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

type error = { pos : int; message : string }

exception Parse_error of error

let error_to_string e = Printf.sprintf "offset %d: %s" e.pos e.message

let rec equal a b =
  match (a, b) with
  | Null, Null -> true
  | Bool x, Bool y -> Bool.equal x y
  | Num x, Num y -> Float.equal x y
  | Str x, Str y -> String.equal x y
  | Arr x, Arr y -> List.equal equal x y
  | Obj x, Obj y ->
    List.equal (fun (k1, v1) (k2, v2) -> String.equal k1 k2 && equal v1 v2) x y
  | (Null | Bool _ | Num _ | Str _ | Arr _ | Obj _), _ -> false

type state = { src : string; mutable pos : int }

let fail st fmt =
  Printf.ksprintf (fun message -> raise (Parse_error { pos = st.pos; message })) fmt

let peek st = if st.pos < String.length st.src then Some st.src.[st.pos] else None

let skip_ws st =
  while
    match peek st with
    | Some (' ' | '\t' | '\n' | '\r') -> true
    | Some _ | None -> false
  do
    st.pos <- st.pos + 1
  done

let expect st c =
  match peek st with
  | Some c' when c' = c -> st.pos <- st.pos + 1
  | Some c' -> fail st "expected %C, found %C" c c'
  | None -> fail st "expected %C, found end of input" c

let literal st word value =
  let n = String.length word in
  if st.pos + n <= String.length st.src && String.sub st.src st.pos n = word then begin
    st.pos <- st.pos + n;
    value
  end
  else fail st "invalid literal"

let parse_string_body st =
  expect st '"';
  let buf = Buffer.create 16 in
  let rec go () =
    match peek st with
    | None -> fail st "unterminated string"
    | Some '"' ->
      st.pos <- st.pos + 1;
      Buffer.contents buf
    | Some '\\' ->
      st.pos <- st.pos + 1;
      (match peek st with
      | None -> fail st "dangling escape"
      | Some e ->
        st.pos <- st.pos + 1;
        (match e with
        | '"' -> Buffer.add_char buf '"'
        | '\\' -> Buffer.add_char buf '\\'
        | '/' -> Buffer.add_char buf '/'
        | 'b' -> Buffer.add_char buf '\b'
        | 'f' -> Buffer.add_char buf '\012'
        | 'n' -> Buffer.add_char buf '\n'
        | 'r' -> Buffer.add_char buf '\r'
        | 't' -> Buffer.add_char buf '\t'
        | 'u' ->
          if st.pos + 4 > String.length st.src then fail st "truncated \\u escape";
          let hex = String.sub st.src st.pos 4 in
          st.pos <- st.pos + 4;
          (match int_of_string_opt ("0x" ^ hex) with
          | Some code when code < 128 -> Buffer.add_char buf (Char.chr code)
          | Some _ -> Buffer.add_char buf '?'
          | None -> fail st "invalid \\u escape %S" hex)
        | c -> fail st "invalid escape \\%c" c);
        go ())
    | Some c when Char.code c < 0x20 -> fail st "unescaped control character"
    | Some c ->
      st.pos <- st.pos + 1;
      Buffer.add_char buf c;
      go ()
  in
  go ()

let parse_number st =
  let start = st.pos in
  let is_num_char c =
    match c with '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true | _ -> false
  in
  while (match peek st with Some c when is_num_char c -> true | _ -> false) do
    st.pos <- st.pos + 1
  done;
  let text = String.sub st.src start (st.pos - start) in
  match float_of_string_opt text with
  | Some f -> Num f
  | None -> fail st "invalid number %S" text

let rec parse_value st =
  skip_ws st;
  match peek st with
  | None -> fail st "unexpected end of input"
  | Some '{' ->
    st.pos <- st.pos + 1;
    skip_ws st;
    if peek st = Some '}' then begin
      st.pos <- st.pos + 1;
      Obj []
    end
    else begin
      let rec members acc =
        skip_ws st;
        let key = parse_string_body st in
        skip_ws st;
        expect st ':';
        let v = parse_value st in
        skip_ws st;
        match peek st with
        | Some ',' ->
          st.pos <- st.pos + 1;
          members ((key, v) :: acc)
        | Some '}' ->
          st.pos <- st.pos + 1;
          List.rev ((key, v) :: acc)
        | Some c -> fail st "expected ',' or '}', found %C" c
        | None -> fail st "unterminated object"
      in
      Obj (members [])
    end
  | Some '[' ->
    st.pos <- st.pos + 1;
    skip_ws st;
    if peek st = Some ']' then begin
      st.pos <- st.pos + 1;
      Arr []
    end
    else begin
      let rec items acc =
        let v = parse_value st in
        skip_ws st;
        match peek st with
        | Some ',' ->
          st.pos <- st.pos + 1;
          items (v :: acc)
        | Some ']' ->
          st.pos <- st.pos + 1;
          List.rev (v :: acc)
        | Some c -> fail st "expected ',' or ']', found %C" c
        | None -> fail st "unterminated array"
      in
      Arr (items [])
    end
  | Some '"' -> Str (parse_string_body st)
  | Some 't' -> literal st "true" (Bool true)
  | Some 'f' -> literal st "false" (Bool false)
  | Some 'n' -> literal st "null" Null
  | Some ('-' | '0' .. '9') -> parse_number st
  | Some c -> fail st "unexpected character %C" c

let parse_exn input =
  let st = { src = input; pos = 0 } in
  let v = parse_value st in
  skip_ws st;
  (match peek st with
  | Some c -> fail st "trailing %C after document" c
  | None -> ());
  v

let parse input =
  match parse_exn input with
  | v -> Ok v
  | exception Parse_error e -> Error e

let add_escaped buf s =
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s

let escape s =
  let buf = Buffer.create (String.length s + 2) in
  add_escaped buf s;
  Buffer.contents buf

let number_to_string f =
  if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.0f" f
  else Printf.sprintf "%g" f

(* Encode straight into a caller-owned buffer: the daemon's verdict
   streams render one JSON document per message, and reusing one Buffer
   per connection keeps the hot path free of the intermediate strings
   [to_string]'s concatenation would allocate. *)
let rec to_buffer buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool true -> Buffer.add_string buf "true"
  | Bool false -> Buffer.add_string buf "false"
  | Num f -> Buffer.add_string buf (number_to_string f)
  | Str s ->
    Buffer.add_char buf '"';
    add_escaped buf s;
    Buffer.add_char buf '"'
  | Arr items ->
    Buffer.add_char buf '[';
    List.iteri
      (fun i item ->
        if i > 0 then Buffer.add_char buf ',';
        to_buffer buf item)
      items;
    Buffer.add_char buf ']'
  | Obj kvs ->
    Buffer.add_char buf '{';
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char buf ',';
        Buffer.add_char buf '"';
        add_escaped buf k;
        Buffer.add_string buf "\":";
        to_buffer buf v)
      kvs;
    Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 256 in
  to_buffer buf v;
  Buffer.contents buf

let pretty v =
  let buf = Buffer.create 256 in
  let rec go indent v =
    let pad = String.make indent ' ' in
    match v with
    | Null | Bool _ | Num _ | Str _ -> Buffer.add_string buf (to_string v)
    | Arr [] -> Buffer.add_string buf "[]"
    | Arr items ->
      Buffer.add_string buf "[\n";
      List.iteri
        (fun i item ->
          if i > 0 then Buffer.add_string buf ",\n";
          Buffer.add_string buf (pad ^ "  ");
          go (indent + 2) item)
        items;
      Buffer.add_string buf ("\n" ^ pad ^ "]")
    | Obj [] -> Buffer.add_string buf "{}"
    | Obj kvs ->
      Buffer.add_string buf "{\n";
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_string buf ",\n";
          Buffer.add_string buf (Printf.sprintf "%s  \"%s\": " pad (escape k));
          go (indent + 2) v)
        kvs;
      Buffer.add_string buf ("\n" ^ pad ^ "}")
  in
  go 0 v;
  Buffer.add_char buf '\n';
  Buffer.contents buf

let member key = function
  | Obj kvs -> List.assoc_opt key kvs
  | Null | Bool _ | Num _ | Str _ | Arr _ -> None

let get_str = function Str s -> Some s | _ -> None
let get_bool = function Bool b -> Some b | _ -> None
let get_num = function Num f -> Some f | _ -> None
let get_arr = function Arr l -> Some l | _ -> None
