(** Rendering values back to YAML text.

    [to_string] emits block style, using flow style for lists of scalars
    (the idiomatic CVL layout, cf. the paper's Listings 1-5). Scalars
    that would re-parse as a different value (e.g. the string ["true"],
    ["644"], or one containing [: ]) are double-quoted, so
    [Parse.string_exn (to_string v)] round-trips for every [v] whose
    mapping keys are printable. *)

val to_string : Value.t -> string

(** Render a value as a single flow-style expression. *)
val flow : Value.t -> string

(** [scalar s] is the YAML spelling of the string scalar [s], quoting
    only when required. *)
val scalar : string -> string
