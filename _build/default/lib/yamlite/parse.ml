type error = { line : int; message : string }

exception Parse_error of error

let error_to_string e = Printf.sprintf "line %d: %s" e.line e.message
let fail line fmt = Printf.ksprintf (fun message -> raise (Parse_error { line; message })) fmt

(* ------------------------------------------------------------------ *)
(* Logical lines                                                       *)
(* ------------------------------------------------------------------ *)

type line = {
  num : int;
  indent : int;
  text : string;  (** content after indentation, comment stripped, rtrimmed *)
}

(* Strip a trailing comment. A ['#'] opens a comment only at the start of
   the content or after whitespace, and only outside quotes. *)
let strip_comment num s =
  let n = String.length s in
  let buf = Buffer.create n in
  let rec go i quote =
    if i >= n then Buffer.contents buf
    else
      let c = s.[i] in
      match quote with
      | Some q ->
        Buffer.add_char buf c;
        if c = q then
          if q = '\'' && i + 1 < n && s.[i + 1] = '\'' then (
            Buffer.add_char buf '\'';
            go (i + 2) quote)
          else go (i + 1) None
        else if q = '"' && c = '\\' && i + 1 < n then (
          Buffer.add_char buf s.[i + 1];
          go (i + 2) quote)
        else go (i + 1) quote
      | None ->
        if c = '#' && (i = 0 || s.[i - 1] = ' ' || s.[i - 1] = '\t') then
          Buffer.contents buf
        else begin
          Buffer.add_char buf c;
          if c = '"' || c = '\'' then go (i + 1) (Some c) else go (i + 1) None
        end
  in
  ignore num;
  go 0 None

let rtrim s =
  let n = ref (String.length s) in
  while !n > 0 && (s.[!n - 1] = ' ' || s.[!n - 1] = '\t' || s.[!n - 1] = '\r') do
    decr n
  done;
  String.sub s 0 !n

let indent_of num s =
  let n = String.length s in
  let rec go i =
    if i < n && s.[i] = ' ' then go (i + 1)
    else if i < n && s.[i] = '\t' then fail num "tab character in indentation"
    else i
  in
  go 0

(* Raw split that keeps every physical line (needed by block scalars). *)
let physical_lines input =
  String.split_on_char '\n' input |> List.mapi (fun i s -> (i + 1, s))

let logical_lines raw =
  List.filter_map
    (fun (num, s) ->
      let ind = indent_of num s in
      let body = String.sub s ind (String.length s - ind) in
      let text = rtrim (strip_comment num body) in
      if text = "" then None else Some { num; indent = ind; text })
    raw

(* ------------------------------------------------------------------ *)
(* Flow (inline) values                                                *)
(* ------------------------------------------------------------------ *)

let infer_scalar s =
  let t = String.trim s in
  if t = "" || t = "~" then Value.Null
  else
    match String.lowercase_ascii t with
    | "null" -> Value.Null
    | "true" -> Value.Bool true
    | "false" -> Value.Bool false
    | _ -> (
      match int_of_string_opt t with
      | Some i -> Value.Int i
      | None ->
        (* Only unambiguous floats: avoid eating version strings like
           1.2.3 or scalars like ".". *)
        let is_floaty =
          String.length t > 0
          && (match t.[0] with '0' .. '9' | '-' | '+' | '.' -> true | _ -> false)
          && String.exists (fun c -> c = '.' || c = 'e' || c = 'E') t
          && not (String.contains t ' ')
        in
        (match (is_floaty, float_of_string_opt t) with
        | true, Some f -> Value.Float f
        | _ -> Value.Str t))

(* A character cursor over one line's worth of flow content. *)
type cursor = { src : string; mutable pos : int; num : int }

let peek c = if c.pos < String.length c.src then Some c.src.[c.pos] else None
let advance c = c.pos <- c.pos + 1

let skip_spaces c =
  while
    match peek c with
    | Some (' ' | '\t') -> true
    | Some _ | None -> false
  do
    advance c
  done

let parse_double_quoted c =
  advance c;
  let buf = Buffer.create 16 in
  let rec go () =
    match peek c with
    | None -> fail c.num "unterminated double-quoted string"
    | Some '"' ->
      advance c;
      Buffer.contents buf
    | Some '\\' ->
      advance c;
      (match peek c with
      | None -> fail c.num "dangling escape in double-quoted string"
      | Some e ->
        advance c;
        let ch =
          match e with
          | 'n' -> '\n'
          | 't' -> '\t'
          | 'r' -> '\r'
          | '0' -> '\000'
          | '\\' -> '\\'
          | '"' -> '"'
          | '\'' -> '\''
          | other -> other
        in
        Buffer.add_char buf ch;
        go ())
    | Some ch ->
      advance c;
      Buffer.add_char buf ch;
      go ()
  in
  go ()

let parse_single_quoted c =
  advance c;
  let buf = Buffer.create 16 in
  let rec go () =
    match peek c with
    | None -> fail c.num "unterminated single-quoted string"
    | Some '\'' ->
      advance c;
      if peek c = Some '\'' then (
        advance c;
        Buffer.add_char buf '\'';
        go ())
      else Buffer.contents buf
    | Some ch ->
      advance c;
      Buffer.add_char buf ch;
      go ()
  in
  go ()

(* [terminators] are the characters that end a plain scalar in the
   current context (e.g. [,]}] inside flow collections). *)
let parse_plain c terminators =
  let buf = Buffer.create 16 in
  let rec go () =
    match peek c with
    | None -> Buffer.contents buf
    | Some ch when List.mem ch terminators -> Buffer.contents buf
    | Some ch ->
      advance c;
      Buffer.add_char buf ch;
      go ()
  in
  infer_scalar (go ())

let rec parse_flow c terminators =
  skip_spaces c;
  match peek c with
  | None -> Value.Null
  | Some '[' ->
    advance c;
    let items = ref [] in
    let rec loop () =
      skip_spaces c;
      match peek c with
      | Some ']' -> advance c
      | None -> fail c.num "unterminated flow sequence"
      | Some _ ->
        let v = parse_flow c [ ','; ']' ] in
        items := v :: !items;
        skip_spaces c;
        (match peek c with
        | Some ',' ->
          advance c;
          loop ()
        | Some ']' -> advance c
        | Some ch -> fail c.num "unexpected %C in flow sequence" ch
        | None -> fail c.num "unterminated flow sequence")
    in
    loop ();
    Value.List (List.rev !items)
  | Some '{' ->
    advance c;
    let items = ref [] in
    let rec loop () =
      skip_spaces c;
      match peek c with
      | Some '}' -> advance c
      | None -> fail c.num "unterminated flow mapping"
      | Some _ ->
        let key =
          match peek c with
          | Some '"' -> parse_double_quoted c
          | Some '\'' -> parse_single_quoted c
          | _ -> (
            match parse_plain c [ ':'; ','; '}' ] with
            | Value.Str s -> s
            | v -> (
              match Value.scalar_to_string v with
              | Some s -> String.trim s
              | None -> fail c.num "invalid flow mapping key"))
        in
        let key = String.trim key in
        skip_spaces c;
        (match peek c with
        | Some ':' -> advance c
        | _ -> fail c.num "expected ':' after flow mapping key %S" key);
        let v = parse_flow c [ ','; '}' ] in
        if List.mem_assoc key !items then fail c.num "duplicate key %S" key;
        items := (key, v) :: !items;
        skip_spaces c;
        (match peek c with
        | Some ',' ->
          advance c;
          loop ()
        | Some '}' -> advance c
        | Some ch -> fail c.num "unexpected %C in flow mapping" ch
        | None -> fail c.num "unterminated flow mapping")
    in
    loop ();
    Value.Map (List.rev !items)
  | Some '"' -> Value.Str (parse_double_quoted c)
  | Some '\'' -> Value.Str (parse_single_quoted c)
  | Some _ -> parse_plain c terminators

let flow_of_string num s =
  let c = { src = s; pos = 0; num } in
  let v = parse_flow c [] in
  skip_spaces c;
  (match peek c with
  | Some ch -> fail num "trailing %C after value" ch
  | None -> ());
  v

(* Flow content lives on a single physical line, so lifting a flow value
   into the positioned AST annotates every node with that line. *)
let rec annotate num (v : Value.t) : Ast.t =
  let node =
    match v with
    | Value.Null -> Ast.Null
    | Value.Bool b -> Ast.Bool b
    | Value.Int i -> Ast.Int i
    | Value.Float f -> Ast.Float f
    | Value.Str s -> Ast.Str s
    | Value.List items -> Ast.List (List.map (annotate num) items)
    | Value.Map kvs ->
      Ast.Map
        (List.map
           (fun (key, v) -> { Ast.key; key_line = num; value = annotate num v })
           kvs)
  in
  { Ast.line = num; v = node }

(* ------------------------------------------------------------------ *)
(* Block structure                                                     *)
(* ------------------------------------------------------------------ *)

type state = {
  lines : line array;
  raw : (int * string) array;  (** physical lines, for block scalars *)
  mutable cur : int;
}

let peek_line st = if st.cur < Array.length st.lines then Some st.lines.(st.cur) else None

let is_seq_item text = text = "-" || (String.length text >= 2 && text.[0] = '-' && text.[1] = ' ')

(* Split "key: rest" / "key:" at the top level of a line. Returns None if
   the line has no key separator (it is then a plain scalar line). *)
let split_key num text =
  if text.[0] = '"' || text.[0] = '\'' then begin
    let c = { src = text; pos = 0; num } in
    let key = if text.[0] = '"' then parse_double_quoted c else parse_single_quoted c in
    skip_spaces c;
    match peek c with
    | Some ':' ->
      advance c;
      let rest = String.sub text c.pos (String.length text - c.pos) in
      Some (key, String.trim rest)
    | _ -> None
  end
  else if text.[0] = '{' || text.[0] = '[' then
    (* A flow collection: any colon inside belongs to the flow parser. *)
    None
  else begin
    (* The separator is a colon followed by space or end of line; this
       keeps URLs (http://...) and times inside plain scalars intact. *)
    let n = String.length text in
    let rec find i =
      if i >= n then None
      else if text.[i] = ':' && (i + 1 = n || text.[i + 1] = ' ') then Some i
      else find (i + 1)
    in
    match find 0 with
    | None -> None
    | Some i ->
      let key = String.trim (String.sub text 0 i) in
      let rest = if i + 1 >= n then "" else String.trim (String.sub text (i + 1) (n - i - 1)) in
      if key = "" then fail num "empty mapping key" else Some (key, rest)
  end

(* Block scalars: [|] literal and [>] folded. [key_line] is the physical
   line number of the introducing line; content is every following
   physical line more indented than [parent_indent] (blank lines kept). *)
let parse_block_scalar st ~style ~key_num ~parent_indent =
  (* Find the physical position just after the key line. *)
  let raw = st.raw in
  let n = Array.length raw in
  let start =
    let rec go i = if i >= n then n else if fst raw.(i) > key_num then i else go (i + 1) in
    go 0
  in
  (* Collect physical lines until a non-blank line with indent <= parent. *)
  let body = ref [] in
  let block_indent = ref None in
  let i = ref start in
  let continue = ref true in
  while !continue && !i < n do
    let _, s = raw.(!i) in
    let stripped = rtrim s in
    if stripped = "" then begin
      body := "" :: !body;
      incr i
    end
    else begin
      let ind = indent_of (fst raw.(!i)) s in
      if ind <= parent_indent then continue := false
      else begin
        let bi =
          match !block_indent with
          | Some bi -> bi
          | None ->
            block_indent := Some ind;
            ind
        in
        let content =
          if String.length stripped >= bi then String.sub stripped bi (String.length stripped - bi)
          else String.trim stripped
        in
        body := content :: !body;
        incr i
      end
    end
  done;
  (* Advance the logical cursor past consumed lines. *)
  let last_physical = if !i = 0 then key_num else fst raw.(!i - 1) in
  while
    match peek_line st with
    | Some l -> l.num <= last_physical
    | None -> false
  do
    st.cur <- st.cur + 1
  done;
  (* Drop trailing blank lines. *)
  let lines = List.rev !body in
  let rec drop_trailing = function
    | [] -> []
    | l -> (
      match List.rev l with
      | "" :: rest -> drop_trailing (List.rev rest)
      | _ -> l)
  in
  let lines = drop_trailing lines in
  let s =
    match style with
    | '|' -> String.concat "\n" lines
    | '>' -> String.concat " " (List.filter (fun l -> l <> "") lines)
    | _ -> assert false
  in
  { Ast.line = key_num; v = Ast.Str s }

let rec parse_node st ~min_indent : Ast.t =
  match peek_line st with
  | None -> { Ast.line = 0; v = Ast.Null }
  | Some l when l.indent < min_indent -> { Ast.line = l.num; v = Ast.Null }
  | Some l -> if is_seq_item l.text then parse_sequence st ~indent:l.indent else parse_mapping st ~indent:l.indent

and parse_sequence st ~indent =
  let start_num = match peek_line st with Some l -> l.num | None -> 0 in
  let items = ref [] in
  let rec loop () =
    match peek_line st with
    | Some l when l.indent = indent && is_seq_item l.text ->
      st.cur <- st.cur + 1;
      let rest = if l.text = "-" then "" else String.trim (String.sub l.text 1 (String.length l.text - 1)) in
      let item =
        if rest = "" then parse_node st ~min_indent:(indent + 1)
        else parse_inline_item st ~line:l ~rest ~indent
      in
      items := item :: !items;
      loop ()
    | Some l when l.indent > indent -> fail l.num "unexpected indentation inside sequence"
    | Some _ | None -> ()
  in
  loop ();
  { Ast.line = start_num; v = Ast.List (List.rev !items) }

(* A sequence item with inline content: either a scalar/flow value, or
   the first entry of a nested mapping ("- key: value"). *)
and parse_inline_item st ~line ~rest ~indent =
  match split_key line.num rest with
  | None -> parse_value_text st ~num:line.num ~parent_indent:indent ~text:rest
  | Some (key, key_rest) ->
    (* The virtual indent of the nested mapping is where [rest] starts. *)
    let virtual_indent = indent + (String.length line.text - String.length rest) in
    let first = parse_entry_value st ~num:line.num ~parent_indent:virtual_indent ~rest:key_rest in
    let entry = { Ast.key; key_line = line.num; value = first } in
    let tail = parse_mapping_entries st ~indent:virtual_indent ~acc:[ entry ] ~first_num:line.num in
    { Ast.line = line.num; v = Ast.Map tail }

and parse_mapping st ~indent =
  match peek_line st with
  | None -> { Ast.line = 0; v = Ast.Null }
  | Some first -> (
    match split_key first.num first.text with
    | None ->
      (* A bare scalar at block level (whole document is a scalar). *)
      st.cur <- st.cur + 1;
      parse_value_text st ~num:first.num ~parent_indent:(indent - 1) ~text:first.text
    | Some (key, rest) ->
      st.cur <- st.cur + 1;
      let v = parse_entry_value st ~num:first.num ~parent_indent:indent ~rest in
      let entry = { Ast.key; key_line = first.num; value = v } in
      { Ast.line = first.num;
        v = Ast.Map (parse_mapping_entries st ~indent ~acc:[ entry ] ~first_num:first.num) })

and parse_mapping_entries st ~indent ~acc ~first_num =
  match peek_line st with
  | Some l when l.indent = indent && not (is_seq_item l.text) -> (
    match split_key l.num l.text with
    | None -> fail l.num "expected 'key:' in mapping"
    | Some (key, rest) ->
      if List.exists (fun (e : Ast.entry) -> String.equal e.Ast.key key) acc then
        fail l.num "duplicate key %S" key;
      st.cur <- st.cur + 1;
      let v = parse_entry_value st ~num:l.num ~parent_indent:indent ~rest in
      let entry = { Ast.key; key_line = l.num; value = v } in
      parse_mapping_entries st ~indent ~acc:(entry :: acc) ~first_num)
  | Some l when l.indent > indent -> fail l.num "unexpected indentation in mapping"
  | Some _ | None -> List.rev acc

(* The value part of a "key: rest" entry (cursor already past the key
   line). *)
and parse_entry_value st ~num ~parent_indent ~rest =
  if rest = "" then
    (* Nested block, or a sequence at the same indent, or null. *)
    match peek_line st with
    | Some l when l.indent > parent_indent -> parse_node st ~min_indent:(parent_indent + 1)
    | Some l when l.indent = parent_indent && is_seq_item l.text -> parse_sequence st ~indent:parent_indent
    | Some _ | None -> { Ast.line = num; v = Ast.Null }
  else if rest = "|" || rest = ">" then
    parse_block_scalar st ~style:rest.[0] ~key_num:num ~parent_indent
  else parse_value_text st ~num ~parent_indent ~text:rest

and parse_value_text st ~num ~parent_indent ~text =
  ignore st;
  ignore parent_indent;
  annotate num (flow_of_string num text)

(* ------------------------------------------------------------------ *)
(* Entry points                                                        *)
(* ------------------------------------------------------------------ *)

let is_doc_marker text = text = "---" || text = "..."

let parse_document raw_lines =
  let lines = logical_lines raw_lines |> List.filter (fun l -> not (is_doc_marker l.text)) in
  let st = { lines = Array.of_list lines; raw = Array.of_list raw_lines; cur = 0 } in
  let v = parse_node st ~min_indent:0 in
  (match peek_line st with
  | Some l -> fail l.num "trailing content after document"
  | None -> ());
  v

let ast_exn input = parse_document (physical_lines input)

let ast input =
  match ast_exn input with
  | v -> Ok v
  | exception Parse_error e -> Error e

let string_exn input = Ast.to_value (ast_exn input)

let string input =
  match string_exn input with
  | v -> Ok v
  | exception Parse_error e -> Error e

let multi_documents input =
  let raw = physical_lines input in
  (* Split on physical lines whose trimmed content is "---". *)
  let docs = ref [] in
  let current = ref [] in
  let flush () =
    docs := List.rev !current :: !docs;
    current := []
  in
  List.iter
    (fun (num, s) -> if String.trim s = "---" then flush () else current := (num, s) :: !current)
    raw;
  flush ();
  let non_empty d = List.exists (fun (_, s) -> String.trim (strip_comment 0 s) <> "") d in
  List.rev !docs |> List.filter non_empty

let multi_ast input =
  match List.map parse_document (multi_documents input) with
  | vs -> Ok vs
  | exception Parse_error e -> Error e

let multi input = Result.map (List.map Ast.to_value) (multi_ast input)
