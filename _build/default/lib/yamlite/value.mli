(** YAML document values.

    Mapping keys are strings; CVL never uses complex keys. Key order is
    preserved (rule files are read and diffed by humans). *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Map of (string * t) list

val equal : t -> t -> bool

(** {2 Typed accessors}

    The [find] family returns [None] when the key is absent; the [get]
    family additionally returns [None] on a type mismatch. CVL's loader
    reports both cases with its own diagnostics. *)

val find : string -> t -> t option

(** [get_str (Str s)] is [Some s]; scalars of other kinds are rendered
    back to their literal text (CVL treats e.g. [permission: 644] and
    [enabled: True] uniformly as strings when the keyword wants one). *)
val get_str : t -> string option

val get_bool : t -> bool option
val get_int : t -> int option

(** A list of scalars, each coerced as [get_str]. A bare scalar is
    accepted as a one-element list, matching PyYAML-era CVL files where
    [tags: "#cis"] and [tags: ["#cis"]] are interchangeable. *)
val get_str_list : t -> string list option

val get_list : t -> t list option
val get_map : t -> (string * t) list option

(** Literal text of a scalar: [Bool true] is ["true"], [Int 644] is
    ["644"], etc. Returns [None] on lists and maps. *)
val scalar_to_string : t -> string option

val pp : Format.formatter -> t -> unit
