type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Map of (string * t) list

let rec equal a b =
  match (a, b) with
  | Null, Null -> true
  | Bool x, Bool y -> Bool.equal x y
  | Int x, Int y -> Int.equal x y
  | Float x, Float y -> Float.equal x y
  | Str x, Str y -> String.equal x y
  | List x, List y -> List.equal equal x y
  | Map x, Map y ->
    List.equal (fun (k1, v1) (k2, v2) -> String.equal k1 k2 && equal v1 v2) x y
  | (Null | Bool _ | Int _ | Float _ | Str _ | List _ | Map _), _ -> false

let find key = function
  | Map kvs -> List.assoc_opt key kvs
  | Null | Bool _ | Int _ | Float _ | Str _ | List _ -> None

let scalar_to_string = function
  | Null -> Some ""
  | Bool true -> Some "true"
  | Bool false -> Some "false"
  | Int i -> Some (string_of_int i)
  | Float f -> Some (Printf.sprintf "%g" f)
  | Str s -> Some s
  | List _ | Map _ -> None

let get_str = scalar_to_string

let get_bool = function
  | Bool b -> Some b
  | Str s -> (
    match String.lowercase_ascii s with
    | "true" | "yes" | "on" -> Some true
    | "false" | "no" | "off" -> Some false
    | _ -> None)
  | Null | Int _ | Float _ | List _ | Map _ -> None

let get_int = function
  | Int i -> Some i
  | Str s -> int_of_string_opt s
  | Null | Bool _ | Float _ | List _ | Map _ -> None

let get_list = function
  | List l -> Some l
  | Null | Bool _ | Int _ | Float _ | Str _ | Map _ -> None

let get_str_list v =
  match v with
  | List l ->
    let strs = List.filter_map scalar_to_string l in
    if List.length strs = List.length l then Some strs else None
  | Null | Bool _ | Int _ | Float _ | Str _ ->
    Option.map (fun s -> [ s ]) (scalar_to_string v)
  | Map _ -> None

let get_map = function
  | Map kvs -> Some kvs
  | Null | Bool _ | Int _ | Float _ | Str _ | List _ -> None

let rec pp fmt = function
  | Null -> Format.pp_print_string fmt "null"
  | Bool b -> Format.pp_print_bool fmt b
  | Int i -> Format.pp_print_int fmt i
  | Float f -> Format.fprintf fmt "%g" f
  | Str s -> Format.fprintf fmt "%S" s
  | List l ->
    Format.fprintf fmt "[@[%a@]]"
      (Format.pp_print_list ~pp_sep:(fun f () -> Format.fprintf f ";@ ") pp)
      l
  | Map kvs ->
    let pp_kv fmt (k, v) = Format.fprintf fmt "%s: %a" k pp v in
    Format.fprintf fmt "{@[%a@]}"
      (Format.pp_print_list ~pp_sep:(fun f () -> Format.fprintf f ";@ ") pp_kv)
      kvs
