lib/yamlite/value.mli: Format
