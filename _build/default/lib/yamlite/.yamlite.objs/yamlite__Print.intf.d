lib/yamlite/print.mli: Value
