lib/yamlite/parse.mli: Value
