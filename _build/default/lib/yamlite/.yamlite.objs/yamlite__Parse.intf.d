lib/yamlite/parse.mli: Ast Value
