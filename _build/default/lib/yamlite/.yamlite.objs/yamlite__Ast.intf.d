lib/yamlite/ast.mli: Value
