lib/yamlite/parse.ml: Array Ast Buffer List Printf Result String Value
