lib/yamlite/parse.ml: Array Buffer List Printf String Value
