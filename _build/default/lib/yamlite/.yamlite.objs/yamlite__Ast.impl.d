lib/yamlite/ast.ml: List String Value
