lib/yamlite/print.ml: Buffer List Parse Printf String Value
