lib/yamlite/value.ml: Bool Float Format Int List Option Printf String
