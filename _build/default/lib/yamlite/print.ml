let needs_quoting s =
  s = ""
  || (match Parse.string_exn s with Value.Str s' -> s' <> s | _ -> true | exception _ -> true)
  || String.exists (fun c -> c = '\n' || c = '"' || c = '\'' || c = '#') s
  || s.[0] = ' '
  || s.[String.length s - 1] = ' '
  || s.[0] = '-' || s.[0] = '[' || s.[0] = ']' || s.[0] = '{' || s.[0] = '}'
  || s.[0] = '&' || s.[0] = '*' || s.[0] = '!' || s.[0] = '|' || s.[0] = '>'
  || s.[0] = '%' || s.[0] = '@'

let quote s =
  let buf = Buffer.create (String.length s + 2) in
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\r' -> Buffer.add_string buf "\\r"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"';
  Buffer.contents buf

let scalar s = if needs_quoting s then quote s else s

let scalar_of_value = function
  | Value.Null -> "null"
  | Value.Bool true -> "true"
  | Value.Bool false -> "false"
  | Value.Int i -> string_of_int i
  | Value.Float f ->
    let s = Printf.sprintf "%g" f in
    if String.exists (fun c -> c = '.' || c = 'e' || c = 'n' || c = 'i') s then s else s ^ ".0"
  | Value.Str s -> scalar s
  | Value.List _ | Value.Map _ -> assert false

let rec flow = function
  | (Value.Null | Value.Bool _ | Value.Int _ | Value.Float _ | Value.Str _) as v -> scalar_of_value v
  | Value.List items -> "[" ^ String.concat ", " (List.map flow items) ^ "]"
  | Value.Map kvs ->
    let entry (k, v) = Printf.sprintf "%s: %s" (scalar k) (flow v) in
    "{" ^ String.concat ", " (List.map entry kvs) ^ "}"

let is_scalar = function
  | Value.Null | Value.Bool _ | Value.Int _ | Value.Float _ | Value.Str _ -> true
  | Value.List _ | Value.Map _ -> false

let rec render buf indent v =
  let pad = String.make indent ' ' in
  match v with
  | Value.Map [] -> Buffer.add_string buf (pad ^ "{}\n")
  | Value.Map kvs ->
    List.iter
      (fun (k, v) ->
        match v with
        | _ when is_scalar v ->
          Buffer.add_string buf (Printf.sprintf "%s%s: %s\n" pad (scalar k) (scalar_of_value v))
        | Value.List items when List.for_all is_scalar items ->
          Buffer.add_string buf (Printf.sprintf "%s%s: %s\n" pad (scalar k) (flow v))
        | Value.List [] -> Buffer.add_string buf (Printf.sprintf "%s%s: []\n" pad (scalar k))
        | Value.Map [] -> Buffer.add_string buf (Printf.sprintf "%s%s: {}\n" pad (scalar k))
        | _ ->
          Buffer.add_string buf (Printf.sprintf "%s%s:\n" pad (scalar k));
          render buf (indent + 2) v)
      kvs
  | Value.List [] -> Buffer.add_string buf (pad ^ "[]\n")
  | Value.List items ->
    List.iter
      (fun item ->
        if is_scalar item then
          Buffer.add_string buf (Printf.sprintf "%s- %s\n" pad (scalar_of_value item))
        else begin
          match item with
          | Value.List inner when List.for_all is_scalar inner ->
            Buffer.add_string buf (Printf.sprintf "%s- %s\n" pad (flow item))
          | Value.Map ((k, v) :: rest) when is_scalar v ->
            Buffer.add_string buf (Printf.sprintf "%s- %s: %s\n" pad (scalar k) (scalar_of_value v));
            if rest <> [] then render buf (indent + 2) (Value.Map rest)
          | _ ->
            Buffer.add_string buf (Printf.sprintf "%s- %s\n" pad (flow item))
        end)
      items
  | _ when is_scalar v -> Buffer.add_string buf (pad ^ scalar_of_value v ^ "\n")
  | _ -> assert false

let to_string v =
  let buf = Buffer.create 256 in
  render buf 0 v;
  Buffer.contents buf
