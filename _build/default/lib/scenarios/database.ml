let good_postgresql_conf =
  String.concat "\n"
    [
      "listen_addresses = 'localhost'";
      "port = 5432";
      "max_connections = 200";
      "ssl = on";
      "ssl_ciphers = 'HIGH:!aNULL:!MD5'   # strong suites only";
      "password_encryption = scram-sha-256";
      "logging_collector = on";
      "log_connections = on";
      "log_disconnections = on";
      "log_statement = 'ddl'";
      "shared_preload_libraries = 'pgaudit'";
      "";
    ]

(* Faults: world listener, no TLS, md5 hashing, auditing off, unbounded
   connections, lax file modes. *)
let bad_postgresql_conf =
  String.concat "\n"
    [
      "listen_addresses = '*'";
      "port = 5432";
      "max_connections = 10000";
      "ssl = off";
      "password_encryption = md5";
      "log_statement = 'none'";
      "";
    ]

let build ~id ~conf ~conf_mode ~data_mode =
  let frame = Frames.Frame.create ~id Frames.Frame.Host in
  Frames.Frame.add_files frame
    [
      Frames.File.make ~mode:conf_mode ~uid:26 ~gid:26 ~owner:"postgres" ~group:"postgres"
        ~content:conf "/etc/postgresql/postgresql.conf";
      Frames.File.directory ~mode:data_mode ~uid:26 ~gid:26 ~owner:"postgres" ~group:"postgres"
        "/var/lib/postgresql/data";
    ]

let compliant () =
  build ~id:"postgres-good" ~conf:good_postgresql_conf ~conf_mode:0o600 ~data_mode:0o700

let misconfigured () =
  build ~id:"postgres-bad" ~conf:bad_postgresql_conf ~conf_mode:0o644 ~data_mode:0o755

let injected_faults =
  [
    ("postgres", "listen_addresses");
    ("postgres", "ssl");
    ("postgres", "password_encryption");
    ("postgres", "logging_collector");
    ("postgres", "log_connections");
    ("postgres", "log_disconnections");
    ("postgres", "log_statement");
    ("postgres", "shared_preload_libraries");
    ("postgres", "max_connections");
    ("postgres", "/etc/postgresql/postgresql.conf");
    ("postgres", "/var/lib/postgresql/data");
  ]
