(** The three-tier deployment the paper's composite example spans: an
    Ubuntu host (sshd/sysctl/…), an nginx container, a MySQL container,
    a Docker daemon host, and the cloud control plane. *)

(** All five frames, compliant or misconfigured together. *)
val three_tier : compliant:bool -> Frames.Frame.t list

(** A fleet of [n] container frames (alternating nginx/mysql, faults on
    the odd ones) for the scaling ablation. *)
val container_fleet : int -> Frames.Frame.t list

(** Every injected fault across the misconfigured deployment. *)
val injected_faults : (string * string) list
