let three_tier ~compliant =
  [
    (if compliant then Host.compliant () else Host.misconfigured ());
    Webstack.nginx_container_frame ~compliant;
    Webstack.mysql_container_frame ~compliant;
    (if compliant then Dockerhost.compliant () else Dockerhost.misconfigured ());
    (if compliant then Cloud.compliant_frame () else Cloud.misconfigured_frame ());
  ]

let container_fleet n =
  List.init n (fun i ->
      let compliant = i mod 2 = 0 in
      let frame =
        if i mod 4 < 2 then Webstack.nginx_container_frame ~compliant
        else Webstack.mysql_container_frame ~compliant
      in
      (* Distinct ids keep report rows distinguishable. *)
      ignore frame;
      frame)

(* The composites fail as a consequence of the per-entity faults. *)
let composite_faults =
  [
    ("stack", "mysql ssl-ca path and sysctl and nginx SSL");
    ("stack", "tls_everywhere");
    ("stack", "no_root_anywhere");
  ]

let injected_faults =
  Host.injected_faults @ Webstack.injected_faults @ Dockerhost.injected_faults
  @ Cloud.injected_faults @ composite_faults
