let good_apache_conf =
  String.concat "\n"
    [
      "ServerTokens Prod";
      "ServerSignature Off";
      "TraceEnable Off";
      "FileETag None";
      "Timeout 60";
      "KeepAliveTimeout 5";
      "User www-data";
      "Group www-data";
      "Header always append X-Frame-Options SAMEORIGIN";
      "<IfModule ssl_module>";
      "  SSLProtocol all -SSLv3 -SSLv2 -TLSv1 -TLSv1.1";
      "  SSLCipherSuite HIGH:!aNULL:!SHA1";
      "</IfModule>";
      "<Directory /var/www>";
      "  Options -Indexes -Includes -ExecCGI";
      "  AllowOverride None";
      "</Directory>";
      "";
    ]

(* Faults: version disclosure, TRACE on, SSLv3, RC4, indexes, root
   worker, long timeouts, inode ETags, no frame protection. *)
let bad_apache_conf =
  String.concat "\n"
    [
      "ServerTokens Full";
      "ServerSignature On";
      "TraceEnable On";
      "FileETag INode MTime Size";
      "Timeout 300";
      "KeepAliveTimeout 60";
      "User root";
      "<IfModule ssl_module>";
      "  SSLProtocol all";
      "  SSLCipherSuite RC4:HIGH";
      "</IfModule>";
      "<Directory /var/www>";
      "  Options Indexes FollowSymLinks";
      "</Directory>";
      "";
    ]

let apache_frame ~id ~conf ~mode =
  Frames.Frame.add_files
    (Frames.Frame.create ~id Frames.Frame.Host)
    [ Frames.File.make ~mode ~content:conf "/etc/apache2/apache2.conf" ]

let apache_compliant () = apache_frame ~id:"apache-good" ~conf:good_apache_conf ~mode:0o644
let apache_misconfigured () = apache_frame ~id:"apache-bad" ~conf:bad_apache_conf ~mode:0o664

let site_xml properties =
  "<?xml version=\"1.0\"?>\n<configuration>\n"
  ^ String.concat ""
      (List.map
         (fun (name, value) ->
           Printf.sprintf "  <property>\n    <name>%s</name>\n    <value>%s</value>\n  </property>\n"
             name value)
         properties)
  ^ "</configuration>\n"

let good_core_site =
  site_xml
    [
      ("fs.defaultFS", "hdfs://namenode:8020");
      ("hadoop.security.authentication", "kerberos");
      ("hadoop.security.authorization", "true");
      ("hadoop.rpc.protection", "privacy");
      ("fs.permissions.umask-mode", "077");
    ]

let good_hdfs_site =
  site_xml
    [
      ("dfs.permissions.enabled", "true");
      ("dfs.encrypt.data.transfer", "true");
      ("dfs.datanode.data.dir.perm", "700");
      ("dfs.namenode.acls.enabled", "true");
    ]

let good_yarn_site = site_xml [ ("yarn.acl.enable", "true") ]

(* Faults: simple auth, no authorization, cleartext RPC and block
   transfer, permissive umask and datanode dirs, ACLs off. *)
let bad_core_site =
  site_xml
    [
      ("fs.defaultFS", "hdfs://namenode:8020");
      ("hadoop.security.authentication", "simple");
      ("hadoop.security.authorization", "false");
      ("fs.permissions.umask-mode", "022");
    ]

let bad_hdfs_site =
  site_xml
    [
      ("dfs.permissions.enabled", "false");
      ("dfs.datanode.data.dir.perm", "755");
    ]

let bad_yarn_site = site_xml [ ("yarn.acl.enable", "false") ]

let hadoop_frame ~id ~core ~hdfs ~yarn ~mode =
  Frames.Frame.add_files
    (Frames.Frame.create ~id Frames.Frame.Host)
    [
      Frames.File.make ~mode ~content:core "/etc/hadoop/conf/core-site.xml";
      Frames.File.make ~mode ~content:hdfs "/etc/hadoop/conf/hdfs-site.xml";
      Frames.File.make ~mode ~content:yarn "/etc/hadoop/conf/yarn-site.xml";
    ]

let hadoop_compliant () =
  hadoop_frame ~id:"hadoop-good" ~core:good_core_site ~hdfs:good_hdfs_site ~yarn:good_yarn_site
    ~mode:0o644

let hadoop_misconfigured () =
  hadoop_frame ~id:"hadoop-bad" ~core:bad_core_site ~hdfs:bad_hdfs_site ~yarn:bad_yarn_site
    ~mode:0o666

let injected_faults =
  [
    ("apache", "ServerTokens");
    ("apache", "ServerSignature");
    ("apache", "TraceEnable");
    ("apache", "SSLProtocol");
    ("apache", "SSLCipherSuite");
    ("apache", "Options");
    ("apache", "FileETag");
    ("apache", "Timeout");
    ("apache", "KeepAliveTimeout");
    ("apache", "Header X-Frame-Options");
    ("apache", "User");
    ("apache", "/etc/apache2/apache2.conf");
    ("hadoop", "hadoop.security.authentication");
    ("hadoop", "hadoop.security.authorization");
    ("hadoop", "hadoop.rpc.protection");
    ("hadoop", "fs.permissions.umask-mode");
    ("hadoop", "dfs.permissions.enabled");
    ("hadoop", "dfs.encrypt.data.transfer");
    ("hadoop", "dfs.datanode.data.dir.perm");
    ("hadoop", "dfs.namenode.acls.enabled");
    ("hadoop", "yarn.acl.enable");
    ("hadoop", "/etc/hadoop/conf/core-site.xml");
  ]
