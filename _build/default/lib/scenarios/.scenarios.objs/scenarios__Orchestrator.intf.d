lib/scenarios/orchestrator.mli: Frames
