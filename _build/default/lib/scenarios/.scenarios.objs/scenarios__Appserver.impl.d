lib/scenarios/appserver.ml: Frames List Printf String
