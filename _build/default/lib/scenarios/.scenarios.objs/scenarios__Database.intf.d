lib/scenarios/database.mli: Frames
