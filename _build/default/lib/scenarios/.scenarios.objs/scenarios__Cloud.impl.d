lib/scenarios/cloud.ml: Cloudsim Frames String
