lib/scenarios/host.ml: Frames String
