lib/scenarios/database.ml: Frames String
