lib/scenarios/cloud.mli: Cloudsim Frames
