lib/scenarios/orchestrator.ml: Frames String
