lib/scenarios/webstack.mli: Docksim Frames
