lib/scenarios/webstack.ml: Docksim Frames String
