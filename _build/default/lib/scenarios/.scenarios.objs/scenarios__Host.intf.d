lib/scenarios/host.mli: Frames
