lib/scenarios/dockerhost.ml: Frames
