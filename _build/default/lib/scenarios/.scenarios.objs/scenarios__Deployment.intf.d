lib/scenarios/deployment.mli: Frames
