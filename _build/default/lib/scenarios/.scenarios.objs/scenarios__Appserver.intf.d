lib/scenarios/appserver.mli: Frames
