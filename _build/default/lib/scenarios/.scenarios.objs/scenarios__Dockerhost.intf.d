lib/scenarios/dockerhost.mli: Frames
