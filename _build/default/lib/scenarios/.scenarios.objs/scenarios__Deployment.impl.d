lib/scenarios/deployment.ml: Cloud Dockerhost Host List Webstack
