let good_keystone_conf =
  String.concat "\n"
    [
      "[DEFAULT]";
      "debug = false";
      "[token]";
      "provider = fernet";
      "expiration = 3600";
      "[security_compliance]";
      "lockout_failure_attempts = 6";
      "lockout_duration = 1800";
      "";
    ]

(* Faults: uuid tokens, 24h expiration, bootstrap admin token present,
   insecure_debug, no lockout policy. *)
let bad_keystone_conf =
  String.concat "\n"
    [
      "[DEFAULT]";
      "admin_token = SUPERSECRET";
      "insecure_debug = true";
      "debug = true";
      "[token]";
      "provider = uuid";
      "expiration = 86400";
      "";
    ]

let good_nova_conf =
  String.concat "\n"
    [
      "[DEFAULT]";
      "auth_strategy = keystone";
      "debug = false";
      "[glance]";
      "api_insecure = false";
      "";
    ]

(* Faults: noauth, insecure glance. *)
let bad_nova_conf =
  String.concat "\n"
    [
      "[DEFAULT]";
      "auth_strategy = noauth2";
      "[glance]";
      "api_insecure = true";
      "";
    ]

let good_secgroups =
  [
    Cloudsim.Secgroup.make ~name:"web" ~description:"edge tier"
      [
        Cloudsim.Secgroup.ingress ~port:443 ();
        Cloudsim.Secgroup.ingress ~port:80 ();
        Cloudsim.Secgroup.ingress ~cidr:"10.0.0.0/8" ~port:22 ();
      ];
    Cloudsim.Secgroup.make ~name:"db" ~description:"data tier"
      [ Cloudsim.Secgroup.ingress ~cidr:"10.0.1.0/24" ~port:3306 () ];
  ]

(* Faults: SSH and MySQL world-open. *)
let bad_secgroups =
  [
    Cloudsim.Secgroup.make ~name:"web" ~description:"edge tier"
      [
        Cloudsim.Secgroup.ingress ~port:443 ();
        Cloudsim.Secgroup.ingress ~port:22 ();
      ];
    Cloudsim.Secgroup.make ~name:"db" ~description:"data tier"
      [ Cloudsim.Secgroup.ingress_range 3300 3310 ];
  ]

let good_users =
  [
    { Cloudsim.Deployment.name = "alice"; role = "admin"; enabled = true; multi_factor = true };
    { Cloudsim.Deployment.name = "bob"; role = "member"; enabled = true; multi_factor = false };
    { Cloudsim.Deployment.name = "svc-deploy"; role = "member"; enabled = true; multi_factor = false };
  ]

(* Fault: an enabled admin without MFA. *)
let bad_users =
  [
    { Cloudsim.Deployment.name = "alice"; role = "admin"; enabled = true; multi_factor = true };
    { Cloudsim.Deployment.name = "mallory"; role = "admin"; enabled = true; multi_factor = false };
  ]

let instances =
  [
    {
      Cloudsim.Deployment.id = "i-001";
      name = "web-1";
      image = "shop/nginx:1.13";
      flavor = "m1.small";
      security_groups = [ "web" ];
      public_ip = true;
    };
    {
      Cloudsim.Deployment.id = "i-002";
      name = "db-1";
      image = "shop/mysql:5.7";
      flavor = "m1.medium";
      security_groups = [ "db" ];
      public_ip = false;
    };
  ]

let deployment ~compliant =
  let keystone = if compliant then good_keystone_conf else bad_keystone_conf in
  let nova = if compliant then good_nova_conf else bad_nova_conf in
  Cloudsim.Deployment.make
    ~name:(if compliant then "cloud-good" else "cloud-bad")
    ~services:
      [
        Cloudsim.Deployment.service ~name:"keystone" ~path:"/etc/keystone/keystone.conf" keystone;
        Cloudsim.Deployment.service ~name:"nova" ~path:"/etc/nova/nova.conf" nova;
      ]
    ~security_groups:(if compliant then good_secgroups else bad_secgroups)
    ~users:(if compliant then good_users else bad_users)
    ~instances ()

let compliant () = deployment ~compliant:true
let misconfigured () = deployment ~compliant:false

let fix_keystone_perms ~compliant frame =
  let mode = if compliant then 0o640 else 0o644 in
  let frame = Frames.Frame.chmod frame ~path:"/etc/keystone/keystone.conf" mode in
  if compliant then Frames.Frame.chown frame ~path:"/etc/keystone/keystone.conf" ~uid:116 ~gid:116
  else frame

let compliant_frame () = fix_keystone_perms ~compliant:true (Cloudsim.Deployment.to_frame (compliant ()))

let misconfigured_frame () =
  fix_keystone_perms ~compliant:false (Cloudsim.Deployment.to_frame (misconfigured ()))

let injected_faults =
  [
    ("openstack", "provider");
    ("openstack", "expiration");
    ("openstack", "admin_token");
    ("openstack", "lockout_failure_attempts");
    ("openstack", "insecure_debug");
    ("openstack", "auth_strategy");
    ("openstack", "debug");
    ("openstack", "api_insecure");
    ("openstack", "world_open_ssh");
    ("openstack", "world_open_db");
    ("openstack", "admins_without_mfa");
    ("openstack", "/etc/keystone/keystone.conf");
  ]
