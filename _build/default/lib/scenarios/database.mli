(** PostgreSQL host frames for the post-paper postgres target. *)

val compliant : unit -> Frames.Frame.t
val misconfigured : unit -> Frames.Frame.t
val injected_faults : (string * string) list
