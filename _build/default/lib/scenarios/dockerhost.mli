(** Docker daemon host frames: /etc/docker/daemon.json in compliant and
    misconfigured variants, for the CIS-Docker daemon rules. *)

val compliant : unit -> Frames.Frame.t
val misconfigured : unit -> Frames.Frame.t
val injected_faults : (string * string) list
