(** Orchestrator manifests: a docker-compose application and a
    Kubernetes pod manifest, compliant and misconfigured — the
    post-paper coverage-growth targets. *)

val compose_compliant : unit -> Frames.Frame.t
val compose_misconfigured : unit -> Frames.Frame.t

val k8s_compliant : unit -> Frames.Frame.t
val k8s_misconfigured : unit -> Frames.Frame.t

(** (entity, rule) faults injected into the misconfigured variants. *)
val injected_faults : (string * string) list
