(** Apache httpd host frames (the remaining Table 1 application
    targets): compliant and misconfigured variants for the OWASP apache
    ruleset, and Hadoop data-platform frames for the HIPAA/PCI hadoop
    ruleset. *)

val apache_compliant : unit -> Frames.Frame.t
val apache_misconfigured : unit -> Frames.Frame.t

val hadoop_compliant : unit -> Frames.Frame.t
val hadoop_misconfigured : unit -> Frames.Frame.t

val injected_faults : (string * string) list
