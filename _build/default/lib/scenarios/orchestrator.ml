let good_compose =
  String.concat "\n"
    [
      "version: \"3.8\"";
      "services:";
      "  web:";
      "    image: shop/nginx:1.13-hardened";
      "    read_only: true";
      "    mem_limit: 512m";
      "    restart: on-failure:5";
      "    security_opt: [no-new-privileges:true]";
      "    ports: [\"443:443\"]";
      "  db:";
      "    image: shop/mysql:5.7-hardened";
      "    read_only: true";
      "    mem_limit: 1g";
      "    restart: on-failure:5";
      "    security_opt: [no-new-privileges:true]";
      "    volumes: [\"dbdata:/var/lib/mysql\"]";
      "";
    ]

(* Faults: privileged web, host network, docker.sock mount, always
   restart, root user, SYS_ADMIN, no limits/read_only/security_opt. *)
let bad_compose =
  String.concat "\n"
    [
      "version: \"3.8\"";
      "services:";
      "  web:";
      "    image: shop/nginx:1.13";
      "    privileged: true";
      "    network_mode: host";
      "    restart: always";
      "    user: root";
      "    cap_add: [SYS_ADMIN]";
      "    volumes: [\"/var/run/docker.sock:/var/run/docker.sock\"]";
      "  db:";
      "    image: shop/mysql:5.7";
      "    pid: host";
      "";
    ]

let good_pod =
  String.concat "\n"
    [
      "apiVersion: v1";
      "kind: Pod";
      "metadata:";
      "  name: web";
      "spec:";
      "  automountServiceAccountToken: false";
      "  containers:";
      "    - name: nginx";
      "      image: shop/nginx:1.13-hardened";
      "      imagePullPolicy: Always";
      "      securityContext:";
      "        allowPrivilegeEscalation: false";
      "        readOnlyRootFilesystem: true";
      "        runAsNonRoot: true";
      "      resources:";
      "        limits:";
      "          memory: 512Mi";
      "          cpu: 500m";
      "";
    ]

(* Faults: host namespaces, privileged, escalation allowed, writable
   root, root user, no limits, stale pull policy, token mounted. *)
let bad_pod =
  String.concat "\n"
    [
      "apiVersion: v1";
      "kind: Pod";
      "metadata:";
      "  name: web";
      "spec:";
      "  hostNetwork: true";
      "  hostPID: true";
      "  automountServiceAccountToken: true";
      "  containers:";
      "    - name: nginx";
      "      image: shop/nginx:latest";
      "      imagePullPolicy: IfNotPresent";
      "      securityContext:";
      "        privileged: true";
      "        allowPrivilegeEscalation: true";
      "        readOnlyRootFilesystem: false";
      "";
    ]

let frame_with ~id path content =
  Frames.Frame.add_file
    (Frames.Frame.create ~id Frames.Frame.Host)
    (Frames.File.make ~content path)

let compose_compliant () = frame_with ~id:"compose-good" "/srv/app/docker-compose.yml" good_compose
let compose_misconfigured () = frame_with ~id:"compose-bad" "/srv/app/docker-compose.yml" bad_compose
let k8s_compliant () = frame_with ~id:"k8s-good" "/etc/kubernetes/manifests/web.yaml" good_pod
let k8s_misconfigured () = frame_with ~id:"k8s-bad" "/etc/kubernetes/manifests/web.yaml" bad_pod

let injected_faults =
  [
    ("compose", "privileged");
    ("compose", "network_mode");
    ("compose", "pid");
    ("compose", "restart");
    ("compose", "mem_limit");
    ("compose", "read_only");
    ("compose", "user");
    ("compose", "cap_add");
    ("compose", "volumes");
    ("compose", "security_opt");
    ("kubernetes", "hostNetwork");
    ("kubernetes", "hostPID");
    ("kubernetes", "privileged");
    ("kubernetes", "allowPrivilegeEscalation");
    ("kubernetes", "readOnlyRootFilesystem");
    ("kubernetes", "runAsNonRoot");
    ("kubernetes", "memory");
    ("kubernetes", "cpu");
    ("kubernetes", "imagePullPolicy");
    ("kubernetes", "automountServiceAccountToken");
  ]
