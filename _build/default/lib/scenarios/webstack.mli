(** Synthetic web-tier entities: nginx and MySQL Docker images and
    running containers, in compliant and misconfigured variants.

    These exercise the paper's headline capability — running the same
    CVL rules against Docker images (static layers) and running
    containers (image + runtime state) — plus the Listing 1 composite
    (mysql ssl-ca, nginx SSL). *)

val nginx_image : compliant:bool -> Docksim.Image.t
val mysql_image : compliant:bool -> Docksim.Image.t

val nginx_container : compliant:bool -> Docksim.Container.t
val mysql_container : compliant:bool -> Docksim.Container.t

(** Frames for the four entities above. *)
val nginx_image_frame : compliant:bool -> Frames.Frame.t

val mysql_image_frame : compliant:bool -> Frames.Frame.t
val nginx_container_frame : compliant:bool -> Frames.Frame.t
val mysql_container_frame : compliant:bool -> Frames.Frame.t

(** Faults present in the misconfigured container frames, as
    (entity, rule name). *)
val injected_faults : (string * string) list

(** Raw configuration texts, for lens round-trip tests and benches. *)
val good_nginx_conf : string

val good_my_cnf : string
