let good_nginx_conf =
  String.concat "\n"
    [
      "user www-data;";
      "worker_processes auto;";
      "events { worker_connections 1024; }";
      "http {";
      "  server_tokens off;";
      "  client_max_body_size 8m;";
      "  server {";
      "    listen 443 ssl;";
      "    server_name shop.example.com;";
      "    ssl_protocols TLSv1.2 TLSv1.3;";
      "    ssl_ciphers HIGH:!aNULL:!MD5;";
      "    ssl_prefer_server_ciphers on;";
      "    ssl_certificate /etc/nginx/tls/server.crt;";
      "    ssl_certificate_key /etc/nginx/tls/server.key;";
      "    add_header X-Frame-Options SAMEORIGIN;";
      "    add_header Strict-Transport-Security \"max-age=31536000\";";
      "    location / { proxy_pass http://app:8080; }";
      "  }";
      "}";
      "";
    ]

(* Faults: plain-HTTP listener, SSLv3 enabled, weak ciphers, version
   disclosure, directory listings, missing headers. *)
let bad_nginx_conf =
  String.concat "\n"
    [
      "user www-data;";
      "events { worker_connections 1024; }";
      "http {";
      "  server {";
      "    listen 80;";
      "    server_name shop.example.com;";
      "    ssl_protocols SSLv3 TLSv1.2;";
      "    ssl_ciphers RC4:HIGH;";
      "    ssl_certificate /etc/nginx/tls/server.crt;";
      "    ssl_certificate_key /etc/nginx/tls/server.key;";
      "    location /files {";
      "      autoindex on;";
      "    }";
      "  }";
      "}";
      "";
    ]

let good_my_cnf =
  String.concat "\n"
    [
      "[client]";
      "port = 3306";
      "[mysqld]";
      "user = mysql";
      "port = 3306";
      "bind-address = 127.0.0.1";
      "ssl-ca = /etc/mysql/cacert.pem";
      "ssl-cert = /etc/mysql/server-cert.pem";
      "ssl-key = /etc/mysql/server-key.pem";
      "local-infile = 0";
      "skip-symbolic-links";
      "secure-file-priv = /var/lib/mysql-files";
      "log-error = /var/log/mysql/error.log";
      "";
    ]

(* Faults: world-reachable listener, local-infile on, no ssl-ca, runs as
   root, legacy hashing. *)
let bad_my_cnf =
  String.concat "\n"
    [
      "[client]";
      "port = 3306";
      "[mysqld]";
      "user = root";
      "port = 3306";
      "bind-address = 0.0.0.0";
      "local-infile = 1";
      "old_passwords = 1";
      "log-error = /var/log/mysql/error.log";
      "";
    ]

let layer = Docksim.Layer.make

let nginx_image ~compliant =
  let conf = if compliant then good_nginx_conf else bad_nginx_conf in
  let base =
    layer ~id:"sha256:base-ubuntu" ~created_by:"FROM ubuntu:14.04"
      [
        Docksim.Layer.Add (Frames.File.make ~content:"127.0.0.1 localhost\n" "/etc/hosts");
        Docksim.Layer.Add
          (Frames.File.make ~content:"root:x:0:0:root:/root:/bin/bash\nnginx:x:101:101::/nonexistent:/bin/false\n" "/etc/passwd");
      ]
  in
  let install =
    layer ~id:"sha256:nginx-install" ~created_by:"RUN apt-get install nginx"
      [
        Docksim.Layer.Add (Frames.File.make ~content:"# default vhost (removed below)\n" "/etc/nginx/sites-enabled/default");
        Docksim.Layer.Add (Frames.File.make ~mode:0o644 ~content:conf "/etc/nginx/nginx.conf");
        Docksim.Layer.Add (Frames.File.make ~mode:0o600 ~content:"CERT\n" "/etc/nginx/tls/server.crt");
        Docksim.Layer.Add (Frames.File.make ~mode:0o600 ~content:"KEY\n" "/etc/nginx/tls/server.key");
      ]
  in
  let cleanup =
    layer ~id:"sha256:nginx-clean" ~created_by:"RUN rm /etc/nginx/sites-enabled/default"
      [ Docksim.Layer.Whiteout "/etc/nginx/sites-enabled/default" ]
  in
  let config =
    if compliant then
      {
        Docksim.Image.default_config with
        Docksim.Image.user = "nginx";
        exposed_ports = [ 443 ];
        healthcheck = Some "curl -fk https://localhost/ || exit 1";
        env = [ ("PATH", "/usr/sbin:/usr/bin:/sbin:/bin") ];
      }
    else
      { Docksim.Image.default_config with Docksim.Image.exposed_ports = [ 80 ] }
  in
  Docksim.Image.make ~config ~reference:(if compliant then "shop/nginx:1.13-hardened" else "shop/nginx:1.13")
    [ base; install; cleanup ]

let mysql_image ~compliant =
  let cnf = if compliant then good_my_cnf else bad_my_cnf in
  let base =
    layer ~id:"sha256:base-ubuntu" ~created_by:"FROM ubuntu:14.04"
      [
        Docksim.Layer.Add
          (Frames.File.make ~content:"root:x:0:0:root:/root:/bin/bash\nmysql:x:105:114::/nonexistent:/bin/false\n" "/etc/passwd");
      ]
  in
  let install =
    layer ~id:"sha256:mysql-install" ~created_by:"RUN apt-get install mysql-server"
      [
        Docksim.Layer.Add (Frames.File.make ~mode:0o644 ~content:cnf "/etc/mysql/my.cnf");
        Docksim.Layer.Add (Frames.File.directory ~mode:(if compliant then 0o700 else 0o755) ~uid:105 ~gid:114 ~owner:"mysql" ~group:"mysql" "/var/lib/mysql");
        Docksim.Layer.Add (Frames.File.make ~mode:0o600 ~content:"CA\n" "/etc/mysql/cacert.pem");
      ]
  in
  let config =
    if compliant then
      {
        Docksim.Image.default_config with
        Docksim.Image.user = "mysql";
        exposed_ports = [ 3306 ];
        healthcheck = Some "mysqladmin ping";
      }
    else { Docksim.Image.default_config with Docksim.Image.exposed_ports = [ 3306 ] }
  in
  Docksim.Image.make ~config
    ~reference:(if compliant then "shop/mysql:5.7-hardened" else "shop/mysql:5.7")
    [ base; install ]

let good_runtime =
  {
    Docksim.Container.default_runtime with
    Docksim.Container.readonly_rootfs = true;
    memory_limit = 512 * 1024 * 1024;
    cpu_shares = 512;
    pids_limit = 256;
    cap_drop = [ "ALL" ];
    cap_add = [ "NET_BIND_SERVICE" ];
    security_opt = [ "apparmor=docker-default"; "no-new-privileges" ];
    restart_policy = "on-failure:5";
  }

let bad_runtime =
  {
    Docksim.Container.default_runtime with
    Docksim.Container.privileged = true;
    network_mode = "host";
    pid_mode = "host";
    restart_policy = "always";
    docker_socket_mounted = true;
  }

let nginx_container ~compliant =
  let runtime =
    if compliant then
      { good_runtime with Docksim.Container.published_ports = [ (443, 443) ] }
    else { bad_runtime with Docksim.Container.published_ports = [ (80, 80) ] }
  in
  Docksim.Container.make ~runtime
    ~processes:
      [ { Frames.Frame.pid = 1; user = (if compliant then "nginx" else "root"); command = "nginx -g daemon off;" } ]
    ~id:(if compliant then "c-nginx-good" else "c-nginx-bad")
    ~name:"web" (nginx_image ~compliant)

let mysql_container ~compliant =
  let runtime =
    if compliant then good_runtime else { bad_runtime with Docksim.Container.network_mode = "bridge" }
  in
  Docksim.Container.make ~runtime
    ~processes:
      [ { Frames.Frame.pid = 1; user = (if compliant then "mysql" else "root"); command = "mysqld" } ]
    ~id:(if compliant then "c-mysql-good" else "c-mysql-bad")
    ~name:"db" (mysql_image ~compliant)

let nginx_image_frame ~compliant = Docksim.Image.flatten (nginx_image ~compliant)
let mysql_image_frame ~compliant = Docksim.Image.flatten (mysql_image ~compliant)
let nginx_container_frame ~compliant = Docksim.Container.to_frame (nginx_container ~compliant)

let mysql_container_frame ~compliant =
  let frame = Docksim.Container.to_frame (mysql_container ~compliant) in
  let variables =
    if compliant then "have_ssl = YES\nhave_openssl = YES\nlocal_infile = OFF\n"
    else "have_ssl = DISABLED\nhave_openssl = DISABLED\nlocal_infile = ON\n"
  in
  Frames.Frame.set_runtime_doc frame ~key:"mysql_variables" variables

let injected_faults =
  [
    ("nginx", "ssl_protocols");
    ("nginx", "server_tokens");
    ("nginx", "ssl_ciphers");
    ("nginx", "listen");
    ("nginx", "add_header X-Frame-Options");
    ("nginx", "add_header Strict-Transport-Security");
    ("nginx", "client_max_body_size");
    ("nginx", "autoindex");
    ("nginx", "ssl_prefer_server_ciphers");
    ("mysql", "ssl-ca");
    ("mysql", "have_ssl");
    ("mysql", "bind-address");
    ("mysql", "local-infile");
    ("mysql", "skip-symbolic-links");
    ("mysql", "secure-file-priv");
    ("mysql", "old_passwords");
    ("mysql", "user");
    ("mysql", "/var/lib/mysql");
    ("docker", "container_privileged");
    ("docker", "container_network_mode");
    ("docker", "container_pid_mode");
    ("docker", "container_readonly_rootfs");
    ("docker", "container_memory_limit");
    ("docker", "container_restart_policy");
    ("docker", "container_docker_socket");
    ("docker", "image_user");
    ("docker", "image_healthcheck");
  ]
