(** Synthetic Ubuntu 14.04 host frames.

    [compliant] passes the whole system-service ruleset; [misconfigured]
    carries a known set of injected faults. {!injected_faults} lists the
    (entity, rule name) pairs the misconfigured host must fail —
    integration tests assert the validator reports exactly these. *)

val compliant : unit -> Frames.Frame.t
val misconfigured : unit -> Frames.Frame.t

(** The faults injected into {!misconfigured}, as (entity, rule name). *)
val injected_faults : (string * string) list

(** {2 Raw configuration texts}

    Exposed so lens round-trip tests and benches can reuse realistic
    inputs. *)

val good_sshd_config : string
val good_sysctl_conf : string
val good_fstab : string
val good_modprobe : string
val good_audit_rules : string
val etc_passwd : string
