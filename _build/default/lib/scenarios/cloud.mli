(** Synthetic OpenStack deployments for the OSSG rules: control-plane
    configs (keystone.conf, nova.conf) plus API-resident security
    groups and identity users. *)

val compliant : unit -> Cloudsim.Deployment.t
val misconfigured : unit -> Cloudsim.Deployment.t

val compliant_frame : unit -> Frames.Frame.t
val misconfigured_frame : unit -> Frames.Frame.t

val injected_faults : (string * string) list
