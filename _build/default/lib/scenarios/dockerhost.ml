let good_daemon_json =
  {json|{
  "icc": false,
  "userland-proxy": false,
  "live-restore": true,
  "userns-remap": "default",
  "log-driver": "syslog",
  "log-opts": {"max-size": "10m"}
}
|json}

(* Faults: icc unrestricted, an insecure registry, no userns remap, no
   log driver, live-restore off. *)
let bad_daemon_json =
  {json|{
  "icc": true,
  "insecure-registries": ["registry.internal:5000"]
}
|json}

let build ~id ~daemon_json =
  let frame = Frames.Frame.create ~id Frames.Frame.Host in
  Frames.Frame.add_files frame
    [
      Frames.File.make ~mode:0o644 ~content:daemon_json "/etc/docker/daemon.json";
      Frames.File.directory ~mode:0o755 "/etc/docker/certs.d";
    ]

let compliant () = build ~id:"dockerhost-good" ~daemon_json:good_daemon_json
let misconfigured () = build ~id:"dockerhost-bad" ~daemon_json:bad_daemon_json

let injected_faults =
  [
    ("docker", "icc");
    ("docker", "userland-proxy");
    ("docker", "live-restore");
    ("docker", "insecure-registries");
    ("docker", "userns-remap");
    ("docker", "log-driver");
  ]
