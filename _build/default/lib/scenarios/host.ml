let good_sshd_config =
  String.concat "\n"
    [
      "# OpenSSH server configuration (CIS-hardened)";
      "Protocol 2";
      "LogLevel INFO";
      "X11Forwarding no";
      "MaxAuthTries 4";
      "IgnoreRhosts yes";
      "HostbasedAuthentication no";
      "PermitRootLogin no";
      "PermitEmptyPasswords no";
      "PermitUserEnvironment no";
      "Ciphers aes256-ctr,aes192-ctr,aes128-ctr";
      "ClientAliveInterval 300";
      "ClientAliveCountMax 0";
      "LoginGraceTime 60";
      "Banner /etc/issue.net";
      "Subsystem sftp /usr/lib/openssh/sftp-server";
      "";
    ]

(* Faults: root login permitted, X11 forwarding on, weak cipher listed,
   no banner, grace time too long. *)
let bad_sshd_config =
  String.concat "\n"
    [
      "Protocol 2";
      "LogLevel INFO";
      "X11Forwarding yes";
      "MaxAuthTries 4";
      "IgnoreRhosts yes";
      "HostbasedAuthentication no";
      "PermitRootLogin yes";
      "PermitEmptyPasswords no";
      "PermitUserEnvironment no";
      "Ciphers aes256-ctr,aes128-cbc";
      "ClientAliveInterval 300";
      "LoginGraceTime 120";
      "";
    ]

let good_sysctl_conf =
  String.concat "\n"
    [
      "# Kernel network hardening (CIS 7.x)";
      "net.ipv4.ip_forward = 0";
      "net.ipv4.conf.all.send_redirects = 0";
      "net.ipv4.conf.default.send_redirects = 0";
      "net.ipv4.conf.all.accept_source_route = 0";
      "net.ipv4.conf.default.accept_source_route = 0";
      "net.ipv4.conf.all.accept_redirects = 0";
      "net.ipv4.conf.default.accept_redirects = 0";
      "net.ipv4.conf.all.secure_redirects = 0";
      "net.ipv4.conf.all.log_martians = 1";
      "net.ipv4.icmp_echo_ignore_broadcasts = 1";
      "net.ipv4.icmp_ignore_bogus_error_responses = 1";
      "net.ipv4.conf.all.rp_filter = 1";
      "net.ipv4.tcp_syncookies = 1";
      "";
    ]

(* Faults: forwarding enabled, syncookies line missing, martian logging
   off. *)
let bad_sysctl_conf =
  String.concat "\n"
    [
      "net.ipv4.ip_forward = 1";
      "net.ipv4.conf.all.send_redirects = 0";
      "net.ipv4.conf.default.send_redirects = 0";
      "net.ipv4.conf.all.accept_source_route = 0";
      "net.ipv4.conf.default.accept_source_route = 0";
      "net.ipv4.conf.all.accept_redirects = 0";
      "net.ipv4.conf.default.accept_redirects = 0";
      "net.ipv4.conf.all.secure_redirects = 0";
      "net.ipv4.conf.all.log_martians = 0";
      "net.ipv4.icmp_echo_ignore_broadcasts = 1";
      "net.ipv4.icmp_ignore_bogus_error_responses = 1";
      "net.ipv4.conf.all.rp_filter = 1";
      "";
    ]

let good_fstab =
  String.concat "\n"
    [
      "# <device> <dir> <fstype> <options> <dump> <pass>";
      "UUID=0a5b-01 / ext4 errors=remount-ro 0 1";
      "UUID=0a5b-02 /tmp ext4 nodev,nosuid,noexec 0 2";
      "UUID=0a5b-03 /var ext4 defaults 0 2";
      "UUID=0a5b-04 /var/log ext4 defaults 0 2";
      "UUID=0a5b-05 /home ext4 nodev 0 2";
      "tmpfs /run/shm tmpfs nodev,nosuid,noexec 0 0";
      "";
    ]

(* Faults: /tmp is on the root partition (no row), /home missing,
   /run/shm lacks noexec. *)
let bad_fstab =
  String.concat "\n"
    [
      "UUID=0a5b-01 / ext4 errors=remount-ro 0 1";
      "UUID=0a5b-03 /var ext4 defaults 0 2";
      "UUID=0a5b-04 /var/log ext4 defaults 0 2";
      "tmpfs /run/shm tmpfs nodev,nosuid 0 0";
      "";
    ]

let good_modprobe =
  String.concat "\n"
    [
      "install cramfs /bin/true";
      "install freevxfs /bin/true";
      "install jffs2 /bin/true";
      "install hfs /bin/true";
      "install hfsplus /bin/true";
      "install squashfs /bin/true";
      "install udf /bin/true";
      "install dccp /bin/true";
      "blacklist usb-storage";
      "";
    ]

(* Faults: cramfs loadable, usb-storage not blacklisted. *)
let bad_modprobe =
  String.concat "\n"
    [
      "install freevxfs /bin/true";
      "install jffs2 /bin/true";
      "install hfs /bin/true";
      "install hfsplus /bin/true";
      "install squashfs /bin/true";
      "install udf /bin/true";
      "install dccp /bin/true";
      "";
    ]

let good_audit_rules =
  String.concat "\n"
    [
      "-b 8192";
      "-a always,exit -F arch=b64 -S adjtimex -S settimeofday -k time-change";
      "-a always,exit -F arch=b64 -S chmod -S fchmod -S chown -k perm_mod";
      "-a always,exit -F arch=b64 -S mount -k mounts";
      "-w /etc/passwd -p wa -k identity";
      "-w /etc/group -p wa -k identity";
      "-w /etc/shadow -p wa -k identity";
      "-w /etc/gshadow -p wa -k identity";
      "-w /etc/security/opasswd -p wa -k identity";
      "-w /etc/network -p wa -k system-locale";
      "-w /etc/apparmor -p wa -k MAC-policy";
      "-w /var/log/faillog -p wa -k logins";
      "-w /var/log/lastlog -p wa -k logins";
      "-w /var/log/tallylog -p wa -k logins";
      "-w /var/run/utmp -p wa -k session";
      "-w /etc/sudoers -p wa -k scope";
      "-w /var/log/sudo.log -p wa -k actions";
      "-e 2";
      "";
    ]

(* Faults: shadow watch missing, sudoers watch read-only, mounts rule
   missing, no -e 2. *)
let bad_audit_rules =
  String.concat "\n"
    [
      "-b 8192";
      "-a always,exit -F arch=b64 -S adjtimex -S settimeofday -k time-change";
      "-a always,exit -F arch=b64 -S chmod -S fchmod -S chown -k perm_mod";
      "-w /etc/passwd -p wa -k identity";
      "-w /etc/group -p wa -k identity";
      "-w /etc/gshadow -p wa -k identity";
      "-w /etc/security/opasswd -p wa -k identity";
      "-w /etc/network -p wa -k system-locale";
      "-w /etc/apparmor -p wa -k MAC-policy";
      "-w /var/log/faillog -p wa -k logins";
      "-w /var/log/lastlog -p wa -k logins";
      "-w /var/log/tallylog -p wa -k logins";
      "-w /var/run/utmp -p wa -k session";
      "-w /etc/sudoers -p r -k scope";
      "-w /var/log/sudo.log -p wa -k actions";
      "";
    ]

let etc_passwd =
  String.concat "\n"
    [
      "root:x:0:0:root:/root:/bin/bash";
      "daemon:x:1:1:daemon:/usr/sbin:/usr/sbin/nologin";
      "www-data:x:33:33:www-data:/var/www:/usr/sbin/nologin";
      "mysql:x:105:114:MySQL Server:/nonexistent:/bin/false";
      "sshd:x:104:65534::/var/run/sshd:/usr/sbin/nologin";
      "";
    ]

let etc_group =
  String.concat "\n"
    [
      "root:x:0:";
      "daemon:x:1:";
      "www-data:x:33:";
      "mysql:x:114:";
      "";
    ]

let base_files =
  [
    Frames.File.make ~content:etc_passwd "/etc/passwd";
    Frames.File.make ~content:etc_group "/etc/group";
    Frames.File.make ~mode:0o640 ~content:"root:*:16000:0:99999:7:::\n" "/etc/shadow";
    Frames.File.make ~content:"Authorized access only.\n" "/etc/issue.net";
    Frames.File.make ~content:"127.0.0.1 localhost\n" "/etc/hosts";
  ]

let good_kernel_params =
  [
    ("kernel.randomize_va_space", "2");
    ("net.ipv4.ip_forward", "0");
    ("net.ipv4.tcp_syncookies", "1");
    ("fs.suid_dumpable", "0");
  ]

let bad_kernel_params =
  [
    ("kernel.randomize_va_space", "0");
    ("net.ipv4.ip_forward", "1");
    ("net.ipv4.tcp_syncookies", "1");
    ("fs.suid_dumpable", "1");
  ]

let build ~id ~sshd ~sshd_mode ~sysctl ~fstab ~modprobe ~audit ~kernel_params =
  let frame = Frames.Frame.create ~id Frames.Frame.Host in
  let frame =
    Frames.Frame.add_files frame
      (base_files
      @ [
          Frames.File.make ~mode:sshd_mode ~content:sshd "/etc/ssh/sshd_config";
          Frames.File.make ~content:sysctl "/etc/sysctl.conf";
          Frames.File.make ~content:fstab "/etc/fstab";
          Frames.File.make ~content:modprobe "/etc/modprobe.d/CIS.conf";
          Frames.File.make ~mode:0o640 ~content:audit "/etc/audit/audit.rules";
        ])
  in
  let frame =
    Frames.Frame.set_packages frame
      [
        { Frames.Frame.name = "openssh-server"; version = "6.6p1" };
        { Frames.Frame.name = "auditd"; version = "2.3.2" };
      ]
  in
  let frame =
    Frames.Frame.set_processes frame
      [
        { Frames.Frame.pid = 1; user = "root"; command = "/sbin/init" };
        { Frames.Frame.pid = 612; user = "root"; command = "/usr/sbin/sshd -D" };
        { Frames.Frame.pid = 701; user = "root"; command = "/sbin/auditd" };
      ]
  in
  Frames.Frame.set_kernel_params frame kernel_params

let compliant () =
  build ~id:"host-good" ~sshd:good_sshd_config ~sshd_mode:0o600 ~sysctl:good_sysctl_conf
    ~fstab:good_fstab ~modprobe:good_modprobe ~audit:good_audit_rules
    ~kernel_params:good_kernel_params

let misconfigured () =
  build ~id:"host-bad" ~sshd:bad_sshd_config ~sshd_mode:0o644 ~sysctl:bad_sysctl_conf
    ~fstab:bad_fstab ~modprobe:bad_modprobe ~audit:bad_audit_rules
    ~kernel_params:bad_kernel_params

let injected_faults =
  [
    ("sshd", "X11Forwarding");
    ("sshd", "PermitRootLogin");
    ("sshd", "Ciphers");
    ("sshd", "LoginGraceTime");
    ("sshd", "Banner");
    ("sshd", "/etc/ssh/sshd_config");
    ("sysctl", "net.ipv4.ip_forward");
    ("sysctl", "net.ipv4.conf.all.log_martians");
    ("sysctl", "net.ipv4.tcp_syncookies");
    ("sysctl", "kernel.randomize_va_space");
    ("fstab", "check_tmp_separate_partition");
    ("fstab", "check_tmp_nodev");
    ("fstab", "check_tmp_nosuid");
    ("fstab", "check_tmp_noexec");
    ("fstab", "check_home_separate_partition");
    ("fstab", "check_run_shm_noexec");
    ("modprobe", "disable_cramfs");
    ("modprobe", "blacklist_usb-storage");
    ("audit", "audit_watch_etc_shadow");
    ("audit", "audit_watch_etc_sudoers");
    ("audit", "audit_syscall_mounts");
    ("audit", "audit_immutable");
  ]
