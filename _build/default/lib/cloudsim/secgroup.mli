(** IaaS security groups — the paper's canonical example of
    configuration held in an entity's runtime state rather than a file,
    retrievable only through the cloud API. *)

type direction = Ingress | Egress

type rule = {
  direction : direction;
  protocol : string;  (** ["tcp"] | ["udp"] | ["icmp"] | ["any"] *)
  port_min : int;
  port_max : int;
  cidr : string;  (** e.g. ["0.0.0.0/0"] *)
}

type t = {
  name : string;
  description : string;
  rules : rule list;
}

val make : ?description:string -> name:string -> rule list -> t

val ingress : ?protocol:string -> ?cidr:string -> port:int -> unit -> rule
val ingress_range : ?protocol:string -> ?cidr:string -> int -> int -> rule

(** A rule is world-open when its CIDR is ["0.0.0.0/0"] (or ["::/0"]). *)
val rule_world_open : rule -> bool

(** Ingress rules that expose [port] to the world. *)
val world_open_on : t -> port:int -> rule list

val to_json : t -> Jsonlite.t
