type direction = Ingress | Egress

type rule = {
  direction : direction;
  protocol : string;
  port_min : int;
  port_max : int;
  cidr : string;
}

type t = {
  name : string;
  description : string;
  rules : rule list;
}

let make ?(description = "") ~name rules = { name; description; rules }

let ingress ?(protocol = "tcp") ?(cidr = "0.0.0.0/0") ~port () =
  { direction = Ingress; protocol; port_min = port; port_max = port; cidr }

let ingress_range ?(protocol = "tcp") ?(cidr = "0.0.0.0/0") port_min port_max =
  { direction = Ingress; protocol; port_min; port_max; cidr }

let rule_world_open rule = rule.cidr = "0.0.0.0/0" || rule.cidr = "::/0"

let world_open_on t ~port =
  List.filter
    (fun r ->
      r.direction = Ingress && rule_world_open r && r.port_min <= port && port <= r.port_max)
    t.rules

let direction_to_string = function Ingress -> "ingress" | Egress -> "egress"

let rule_to_json r =
  Jsonlite.Obj
    [
      ("direction", Jsonlite.Str (direction_to_string r.direction));
      ("protocol", Jsonlite.Str r.protocol);
      ("port_range_min", Jsonlite.Num (float_of_int r.port_min));
      ("port_range_max", Jsonlite.Num (float_of_int r.port_max));
      ("remote_ip_prefix", Jsonlite.Str r.cidr);
    ]

let to_json t =
  Jsonlite.Obj
    [
      ("name", Jsonlite.Str t.name);
      ("description", Jsonlite.Str t.description);
      ("security_group_rules", Jsonlite.Arr (List.map rule_to_json t.rules));
    ]
