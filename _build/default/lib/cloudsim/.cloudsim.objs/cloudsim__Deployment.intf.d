lib/cloudsim/deployment.mli: Frames Jsonlite Secgroup
