lib/cloudsim/secgroup.ml: Jsonlite List
