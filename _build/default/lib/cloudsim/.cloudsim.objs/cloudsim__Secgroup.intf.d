lib/cloudsim/secgroup.mli: Jsonlite
