lib/cloudsim/deployment.ml: Frames Jsonlite List Secgroup
