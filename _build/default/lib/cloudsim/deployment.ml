type user = {
  name : string;
  role : string;
  enabled : bool;
  multi_factor : bool;
}

type instance = {
  id : string;
  name : string;
  image : string;
  flavor : string;
  security_groups : string list;
  public_ip : bool;
}

type service = {
  service_name : string;
  config_path : string;
  config : string;
}

type t = {
  name : string;
  region : string;
  services : service list;
  security_groups : Secgroup.t list;
  users : user list;
  instances : instance list;
}

let make ?(region = "us-south") ?(services = []) ?(security_groups = []) ?(users = [])
    ?(instances = []) ~name () =
  { name; region; services; security_groups; users; instances }

let service ~name ~path config = { service_name = name; config_path = path; config }

let users_json t =
  Jsonlite.Arr
    (List.map
       (fun (u : user) ->
         Jsonlite.Obj
           [
             ("name", Jsonlite.Str u.name);
             ("role", Jsonlite.Str u.role);
             ("enabled", Jsonlite.Bool u.enabled);
             ("multi_factor", Jsonlite.Bool u.multi_factor);
           ])
       t.users)

let servers_json t =
  Jsonlite.Arr
    (List.map
       (fun (i : instance) ->
         Jsonlite.Obj
           [
             ("id", Jsonlite.Str i.id);
             ("name", Jsonlite.Str i.name);
             ("image", Jsonlite.Str i.image);
             ("flavor", Jsonlite.Str i.flavor);
             ( "security_groups",
               Jsonlite.Arr (List.map (fun s -> Jsonlite.Str s) i.security_groups) );
             ("public_ip", Jsonlite.Bool i.public_ip);
           ])
       t.instances)

let secgroups_json t = Jsonlite.Arr (List.map Secgroup.to_json t.security_groups)

let to_frame t =
  let frame = Frames.Frame.create ~os:"openstack" ~id:t.name (Frames.Frame.Cloud t.name) in
  let frame =
    List.fold_left
      (fun frame (s : service) -> Frames.Frame.add_file frame (Frames.File.make ~content:s.config s.config_path))
      frame t.services
  in
  let frame =
    Frames.Frame.set_runtime_doc frame ~key:"openstack_secgroups"
      (Jsonlite.to_string (secgroups_json t))
  in
  let frame =
    Frames.Frame.set_runtime_doc frame ~key:"openstack_users" (Jsonlite.to_string (users_json t))
  in
  Frames.Frame.set_runtime_doc frame ~key:"openstack_servers"
    (Jsonlite.to_string (servers_json t))
