(** An OpenStack-like deployment: control-plane services with their
    configuration files, plus API-resident state (security groups,
    users, instances).

    [to_frame] materializes the deployment as a [Cloud] configuration
    frame: service configs appear at their conventional paths
    (/etc/keystone/keystone.conf, /etc/nova/nova.conf, …) and the
    API-resident state is exposed as runtime documents
    (["openstack_secgroups"], ["openstack_users"],
    ["openstack_servers"]) the way the crawler's cloud plugin would
    fetch them over HTTP. *)

type user = {
  name : string;
  role : string;  (** ["admin"] | ["member"] | … *)
  enabled : bool;
  multi_factor : bool;
}

type instance = {
  id : string;
  name : string;
  image : string;
  flavor : string;
  security_groups : string list;
  public_ip : bool;
}

type service = {
  service_name : string;  (** ["keystone"], ["nova"], … *)
  config_path : string;  (** where its ini config lives *)
  config : string;  (** raw ini text *)
}

type t = {
  name : string;
  region : string;
  services : service list;
  security_groups : Secgroup.t list;
  users : user list;
  instances : instance list;
}

val make :
  ?region:string ->
  ?services:service list ->
  ?security_groups:Secgroup.t list ->
  ?users:user list ->
  ?instances:instance list ->
  name:string ->
  unit ->
  t

val service : name:string -> path:string -> string -> service

val to_frame : t -> Frames.Frame.t

val users_json : t -> Jsonlite.t
val servers_json : t -> Jsonlite.t
val secgroups_json : t -> Jsonlite.t
