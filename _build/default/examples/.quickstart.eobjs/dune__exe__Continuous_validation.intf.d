examples/continuous_validation.mli:
