examples/quickstart.ml: Configtree Crawler Cvl Format Frames Lenses List Printf Rulesets String
