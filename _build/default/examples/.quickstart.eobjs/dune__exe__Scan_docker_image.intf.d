examples/scan_docker_image.mli:
