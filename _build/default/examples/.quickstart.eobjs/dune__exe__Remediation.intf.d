examples/remediation.mli:
