examples/cross_entity_stack.mli:
