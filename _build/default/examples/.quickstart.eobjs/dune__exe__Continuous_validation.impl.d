examples/continuous_validation.ml: Cvl Format Frames List Printf Result Rulesets Scenarios String
