examples/remediation.ml: Cvl Format Frames List Option Printf Rulesets Scenarios
