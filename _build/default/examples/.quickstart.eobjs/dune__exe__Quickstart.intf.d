examples/quickstart.mli:
