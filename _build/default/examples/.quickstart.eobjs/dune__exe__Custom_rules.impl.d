examples/custom_rules.ml: Cvl Frames List Printf String
