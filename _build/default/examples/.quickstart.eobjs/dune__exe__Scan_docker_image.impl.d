examples/scan_docker_image.ml: Cvl Docksim Frames List Printf Rulesets Scenarios
