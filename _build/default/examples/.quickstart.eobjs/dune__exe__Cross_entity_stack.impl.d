examples/cross_entity_stack.ml: Cvl Frames List Printf Rulesets Scenarios String
