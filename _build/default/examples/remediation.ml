(* Remediation: because CVL rules are declarative, most violations
   mechanically determine their own fix — the preferred value, the row
   the table must contain, the permission ceiling. This example takes
   the misconfigured host, derives fixes from the rules, re-renders the
   touched files through the same lenses that parsed them, and
   re-validates.

   Run with: dune exec examples/remediation.exe *)

let summarize label frames =
  let run = Cvl.Validator.run ~source:Rulesets.source ~manifest:Rulesets.manifest frames in
  let s = Cvl.Report.summarize run.Cvl.Validator.results in
  Printf.printf "%-28s %s\n" label (Cvl.Report.summary_line s);
  run

let () =
  let frames = [ Scenarios.Host.misconfigured () ] in
  ignore (summarize "before remediation:" frames);

  let frames', reports, remaining =
    Cvl.Remediate.fixpoint ~source:Rulesets.source ~manifest:Rulesets.manifest frames
  in
  print_newline ();
  List.iter (fun r -> Format.printf "  %a@." Cvl.Remediate.pp_report r) reports;
  print_newline ();
  ignore (summarize "after remediation:" frames');
  Printf.printf "\nremaining findings (%d) are runtime state, not files:\n" (List.length remaining);
  List.iter
    (fun (r : Cvl.Engine.result) ->
      Printf.printf "  %s/%s — %s\n" r.Cvl.Engine.entity (Cvl.Rule.name r.Cvl.Engine.rule)
        r.Cvl.Engine.detail)
    remaining;

  (* Show one before/after diff: the sshd configuration. *)
  print_endline "\n--- sshd_config before ---";
  print_string (Option.get (Frames.Frame.read (List.hd frames) "/etc/ssh/sshd_config"));
  print_endline "--- sshd_config after ---";
  print_string (Option.get (Frames.Frame.read (List.hd frames') "/etc/ssh/sshd_config"))
