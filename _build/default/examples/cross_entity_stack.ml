(* Cross-entity composite rules (paper Listing 1) over a three-tier
   deployment: an Ubuntu host, an nginx container, a MySQL container,
   the Docker daemon host and the OpenStack control plane.

   The composite

     mysql.ssl-ca.CONFIGPATH=[mysqld].VALUE == "/etc/mysql/cacert.pem"
       && sysctl.net.ipv4.ip_forward.VALUE == "0"
       && nginx.listen

   only holds when three different entities - in three different frames -
   are each configured correctly.

   Run with: dune exec examples/cross_entity_stack.exe *)

let composite_results run =
  List.filter
    (fun (r : Cvl.Engine.result) -> Cvl.Rule.kind_to_string r.Cvl.Engine.rule = "composite")
    run.Cvl.Validator.results

let show label frames =
  Printf.printf "==== %s ====\n" label;
  let run = Cvl.Validator.run ~source:Rulesets.source ~manifest:Rulesets.manifest frames in
  List.iter
    (fun (r : Cvl.Engine.result) ->
      Printf.printf "[%s] %s\n        %s\n"
        (match r.Cvl.Engine.verdict with
        | Cvl.Engine.Matched -> "PASS"
        | _ -> "FAIL")
        (Cvl.Rule.name r.Cvl.Engine.rule)
        r.Cvl.Engine.detail)
    (composite_results run);
  print_newline ()

let () =
  show "compliant three-tier stack" (Scenarios.Deployment.three_tier ~compliant:true);
  show "misconfigured three-tier stack" (Scenarios.Deployment.three_tier ~compliant:false);

  (* Degrade exactly one atom: flip ip_forward on the (otherwise
     compliant) host and watch only the Listing 1 composite flip. *)
  let frames = Scenarios.Deployment.three_tier ~compliant:true in
  let frames =
    List.map
      (fun frame ->
        if Frames.Frame.id frame = "host-good" then
          Frames.Frame.set_content frame ~path:"/etc/sysctl.conf"
            (String.concat "\n"
               [ "net.ipv4.ip_forward = 1"; "net.ipv4.tcp_syncookies = 1"; "" ])
        else frame)
      frames
  in
  show "compliant stack with ip_forward flipped" frames
