(* Extending ConfigValidator to an application it has never seen -
   here, a Redis server - and adapting shipped rules to a deployment
   through CVL inheritance (paper §3.2, "Inheritance").

   Redis needs no new parser: redis.conf is "Keyword value" like
   sshd_config, so the manifest simply points the sshd lens at it. This
   is the paper's point about Augeas-style reuse: a new entity is a
   manifest section and a YAML file, not custom parsing code.

   Run with: dune exec examples/custom_rules.exe *)

let redis_conf =
  String.concat "\n"
    [
      "bind 0.0.0.0";
      "port 6379";
      "protected-mode no";
      "appendonly yes";
      "maxmemory 0";
      "";
    ]

let redis_rules =
  {|
rules:
  - config_name: bind
    config_path: [""]
    config_description: "Interfaces the server listens on."
    file_context: ["redis.conf"]
    preferred_value: ["127.0.0.1", "::1"]
    preferred_value_match: substr,any
    not_present_description: "bind is not set; redis listens on all interfaces."
    not_matched_preferred_value_description: "redis accepts connections from any interface."
    matched_description: "redis only listens on loopback."
    tags: ["#security", "redis"]
    suggested_action: "Set `bind 127.0.0.1`."

  - config_name: protected-mode
    config_path: [""]
    config_description: "Refuse remote clients when no password is set."
    file_context: ["redis.conf"]
    preferred_value: ["yes"]
    preferred_value_match: exact,all
    not_present_pass: true
    not_present_description: "protected-mode not set (defaults to yes)."
    not_matched_preferred_value_description: "protected-mode is disabled."
    matched_description: "protected-mode shields passwordless instances."
    tags: ["#security", "redis"]

  - config_name: requirepass
    config_path: [""]
    config_description: "Client authentication password."
    file_context: ["redis.conf"]
    check_presence_only: true
    not_present_description: "No password is required to issue commands."
    matched_description: "Clients must authenticate."
    tags: ["#security", "redis"]

  - config_name: maxmemory
    config_path: [""]
    config_description: "Memory ceiling (container-friendliness)."
    file_context: ["redis.conf"]
    non_preferred_value: ["0"]
    non_preferred_value_match: exact,any
    not_present_description: "maxmemory is not set; the instance can grow without bound."
    not_matched_preferred_value_description: "maxmemory 0 disables the memory ceiling."
    matched_description: "A memory ceiling is configured."
    tags: ["#performance", "redis"]
|}

(* A site that terminates TLS in front of redis relaxes the bind rule to
   the proxy network and disables the password rule - without copying
   the base file. *)
let site_overrides =
  {|
parent_cvl_file: "redis.yaml"
rules:
  - config_name: bind
    preferred_value: ["127.0.0.1", "::1", "10.0.2."]
    matched_description: "redis listens only on loopback or the proxy network."

  - config_name: requirepass
    disabled: true
|}

let manifest_yaml =
  {|
redis:
  enabled: True
  config_search_paths:
    - /etc/redis
  cvl_file: "site/redis.yaml"
  lens: sshd
|}

let () =
  let frame =
    Frames.Frame.add_file
      (Frames.Frame.create ~id:"redis-box" Frames.Frame.Host)
      (Frames.File.make ~mode:0o640 ~content:redis_conf "/etc/redis/redis.conf")
  in
  let source =
    Cvl.Loader.assoc_source [ ("redis.yaml", redis_rules); ("site/redis.yaml", site_overrides) ]
  in
  let manifest = Cvl.Manifest.parse_exn manifest_yaml in

  print_endline "== redis validated with the site-adapted ruleset ==";
  let run = Cvl.Validator.run ~source ~manifest [ frame ] in
  List.iter (fun (e, m) -> Printf.eprintf "load error %s: %s\n" e m) run.Cvl.Validator.load_errors;
  print_string (Cvl.Report.to_text ~verbose:true run.Cvl.Validator.results);
  print_endline (Cvl.Report.summary_line (Cvl.Report.summarize run.Cvl.Validator.results));

  (* The same box after remediation. *)
  print_endline "\n== after remediation ==";
  let fixed =
    Frames.Frame.set_content frame ~path:"/etc/redis/redis.conf"
      (String.concat "\n"
         [ "bind 10.0.2.15"; "port 6379"; "protected-mode yes"; "maxmemory 512mb"; "" ])
  in
  let run = Cvl.Validator.run ~source ~manifest [ fixed ] in
  print_string (Cvl.Report.to_text run.Cvl.Validator.results);
  print_endline (Cvl.Report.summary_line (Cvl.Report.summarize run.Cvl.Validator.results))
