(* Continuous validation: the steady-state loop of the paper's
   production deployment, which re-validates tens of thousands of
   containers daily. Between scans most entities have not changed, so
   each cycle:

     1. diffs the new frame snapshot against the previous one,
     2. re-evaluates only the affected entities (Cvl.Incremental),
     3. reports regressions and fixes against the previous results
        (Report.compare_runs).

   Run with: dune exec examples/continuous_validation.exe *)

let rules =
  Result.get_ok (Cvl.Validator.load_rules ~source:Rulesets.source ~manifest:Rulesets.manifest)

let describe_cycle ~cycle ~previous ~before_frame ~after_frame =
  let diff = Frames.Diff.between before_frame after_frame in
  Printf.printf "== cycle %d ==\n" cycle;
  if Frames.Diff.is_empty diff then begin
    Printf.printf "no changes; nothing re-evaluated\n\n";
    previous
  end
  else begin
    Format.printf "changes:@.%a" Frames.Diff.pp diff;
    let merged, reeval =
      Cvl.Incremental.revalidate ~rules ~previous ~diff after_frame
    in
    Printf.printf "re-evaluated entities: %s\n" (String.concat ", " reeval);
    let c = Cvl.Report.compare_runs ~before:previous ~after:merged in
    Printf.printf "%s\n" (Cvl.Report.comparison_summary c);
    List.iter
      (fun (r : Cvl.Engine.result) ->
        Printf.printf "  REGRESSION %s/%s — %s\n" r.Cvl.Engine.entity
          (Cvl.Rule.name r.Cvl.Engine.rule) r.Cvl.Engine.detail)
      c.Cvl.Report.regressions;
    List.iter
      (fun (r : Cvl.Engine.result) ->
        Printf.printf "  FIXED      %s/%s\n" r.Cvl.Engine.entity (Cvl.Rule.name r.Cvl.Engine.rule))
      c.Cvl.Report.fixes;
    print_newline ();
    merged
  end

let () =
  (* Cycle 0: initial full scan of a compliant host. *)
  let frame0 = Scenarios.Host.compliant () in
  let results0 = (Cvl.Validator.run_loaded ~rules [ frame0 ]).Cvl.Validator.results in
  Printf.printf "== cycle 0 (full scan) ==\n%s\n\n"
    (Cvl.Report.summary_line (Cvl.Report.summarize results0));

  (* Cycle 1: someone re-enables root login on the box. *)
  let frame1 =
    Frames.Frame.set_content frame0 ~path:"/etc/ssh/sshd_config"
      (Scenarios.Host.good_sshd_config ^ "PermitRootLogin yes\n")
  in
  let results1 = describe_cycle ~cycle:1 ~previous:results0 ~before_frame:frame0 ~after_frame:frame1 in

  (* Cycle 2: unrelated package drift only. *)
  let frame2 =
    Frames.Frame.set_packages frame1
      ({ Frames.Frame.name = "tzdata"; version = "2017b" } :: Frames.Frame.packages frame1)
  in
  let results2 = describe_cycle ~cycle:2 ~previous:results1 ~before_frame:frame1 ~after_frame:frame2 in

  (* Cycle 3: the regression is remediated. *)
  let frame3, _reports =
    let entry =
      List.find
        (fun (e : Cvl.Manifest.entry) -> e.Cvl.Manifest.entity = "sshd")
        Rulesets.manifest
    in
    Cvl.Remediate.entity frame2 entry (List.assoc entry (rules :> (Cvl.Manifest.entry * Cvl.Rule.t list) list))
  in
  let results3 = describe_cycle ~cycle:3 ~previous:results2 ~before_frame:frame2 ~after_frame:frame3 in
  ignore results3
