(* Scanning Docker images and running containers — the workload the
   paper's production deployment (IBM Vulnerability Advisor) runs at the
   scale of tens of thousands of containers daily.

   The same CVL rules run against:
   - a static image (union of its layers), catching bad configuration
     before anything runs, and
   - the running container (image + runtime state), additionally
     catching runtime misconfiguration (privileged mode, host
     namespaces, missing limits) via docker-inspect script rules.

   Run with: dune exec examples/scan_docker_image.exe *)

let scan label frames =
  Printf.printf "==== %s ====\n" label;
  let run = Cvl.Validator.run ~source:Rulesets.source ~manifest:Rulesets.manifest frames in
  let violations = Cvl.Report.violations run.Cvl.Validator.results in
  if violations = [] then print_endline "clean: no findings"
  else print_string (Cvl.Report.to_text violations);
  Printf.printf "%s\n\n" (Cvl.Report.summary_line (Cvl.Report.summarize run.Cvl.Validator.results))

let () =
  (* Image scan: catches the nginx config faults baked into the layers
     and the image-config faults (root USER, no HEALTHCHECK). *)
  scan "image shop/nginx:1.13 (as pushed)"
    [ Scenarios.Webstack.nginx_image_frame ~compliant:false ];

  (* The union filesystem matters: the hardened image deletes the
     default vhost in a later layer; validation sees the union, not any
     single layer. *)
  let hardened = Scenarios.Webstack.nginx_image ~compliant:true in
  Printf.printf "layers in hardened image: %d\n" (Docksim.Image.layer_count hardened);
  scan "image shop/nginx:1.13-hardened" [ Docksim.Image.flatten hardened ];

  (* Container scan: same rules plus the runtime state. The bad
     container is privileged, shares host namespaces and mounts the
     Docker socket — none of which is visible in the image. *)
  scan "running container web (bad runtime flags)"
    [ Scenarios.Webstack.nginx_container_frame ~compliant:false ];
  scan "running container web (hardened)"
    [ Scenarios.Webstack.nginx_container_frame ~compliant:true ];

  (* Build an image from a Dockerfile — the artifact a developer pushes —
     and scan the result before it ever runs. *)
  print_endline "==== dockerfile build + scan ====";
  let dockerfile =
    "FROM ubuntu:14.04\n\
     COPY nginx.conf /etc/nginx/nginx.conf\n\
     RUN rm -f /etc/nginx/sites-enabled/default\n\
     RUN chmod 644 /etc/nginx/nginx.conf\n\
     USER nginx\n\
     EXPOSE 443\n\
     HEALTHCHECK CMD curl -fk https://localhost/\n"
  in
  let base =
    Docksim.Image.make ~reference:"ubuntu:14.04"
      [
        Docksim.Layer.make ~id:"sha256:base" ~created_by:"FROM scratch"
          [
            Docksim.Layer.Add (Frames.File.make ~content:"root:x:0:0::/root:/bin/bash\n" "/etc/passwd");
            Docksim.Layer.Add (Frames.File.make ~content:"# default vhost\n" "/etc/nginx/sites-enabled/default");
          ];
      ]
  in
  (match
     Docksim.Dockerfile.build
       ~context:[ ("nginx.conf", Frames.File.make ~content:Scenarios.Webstack.good_nginx_conf "nginx.conf") ]
       ~resolve:(function "ubuntu:14.04" -> Some base | _ -> None)
       ~reference:"shop/nginx:from-dockerfile" dockerfile
   with
  | Error e -> print_endline (Docksim.Dockerfile.error_to_string e)
  | Ok image ->
    Printf.printf "built %s (%d layers)\n" image.Docksim.Image.reference
      (Docksim.Image.layer_count image);
    scan "image built from the Dockerfile" [ Docksim.Image.flatten image ]);

  (* Fleet-style sweep, one line per container. *)
  print_endline "==== fleet sweep ====";
  List.iteri
    (fun i frame ->
      let run = Cvl.Validator.run ~source:Rulesets.source ~manifest:Rulesets.manifest [ frame ] in
      let s = Cvl.Report.summarize run.Cvl.Validator.results in
      Printf.printf "container %2d %-14s %s\n" i (Frames.Frame.id frame)
        (Cvl.Report.summary_line s))
    (Scenarios.Deployment.container_fleet 8)
