(* Quickstart: the full ConfigValidator pipeline (paper Figure 1) on a
   minimal example — one host, one sshd_config, one CVL rule.

   Run with: dune exec examples/quickstart.exe *)

let sshd_config = "Protocol 2\nPermitRootLogin yes\nBanner /etc/issue.net\n"

(* The paper's Listing 6 rule, as a rule writer would type it. *)
let rule_yaml =
  {|
config_name: PermitRootLogin
tags: ["#security", "#cis", "#cisubuntu14.04_5.2.8"]
config_path: [""]
config_description: "Enable root login."
file_context: ["sshd_config"]
preferred_value: [ "no" ]
preferred_value_match: substr,all
not_present_description: "PermitRootLogin is not present. It is enabled by default."
not_matched_preferred_value_description: "PermitRootLogin is present but it is enabled."
matched_description: "Root login is disabled."
|}

let () =
  print_endline "== 1. The entity: a configuration frame ==";
  let frame =
    Frames.Frame.add_file
      (Frames.Frame.create ~id:"demo-host" Frames.Frame.Host)
      (Frames.File.make ~mode:0o600 ~content:sshd_config "/etc/ssh/sshd_config")
  in
  Format.printf "%a@.@." Frames.Frame.pp frame;

  print_endline "== 2. Config extractor (crawler) ==";
  let extracted =
    Crawler.find_config_files frame ~search_paths:[ "/etc/ssh" ] ~patterns:[]
  in
  List.iter
    (fun (e : Crawler.extracted) ->
      Printf.printf "found %s (%d bytes, mode %s)\n" e.Crawler.source_path
        (String.length e.Crawler.content)
        (Frames.File.permission_octal e.Crawler.file))
    extracted;
  print_newline ();

  print_endline "== 3. Data normalizer (sshd lens -> tree) ==";
  let forest =
    match Lenses.Registry.parse ~lens_name:"sshd" ~path:"/etc/ssh/sshd_config" sshd_config with
    | Ok (Lenses.Lens.Tree forest) -> forest
    | Ok (Lenses.Lens.Table _) | Error _ -> failwith "unexpected normal form"
  in
  print_endline (Configtree.Tree.to_string forest);
  print_newline ();

  print_endline "== 4. Rule engine (CVL rule -> verdict) ==";
  let rule =
    match Cvl.Loader.parse_rules rule_yaml with
    | Ok [ rule ] -> rule
    | Ok _ | Error _ -> failwith "rule did not load"
  in
  let ctx =
    Cvl.Engine.ctx_of_documents ~entity:"sshd" frame
      [ ("/etc/ssh/sshd_config", Lenses.Lens.Tree forest) ]
  in
  let result = Cvl.Engine.eval_rule ctx rule in

  print_endline "== 5. Output processing ==";
  print_string (Cvl.Report.to_text ~verbose:true [ result ]);
  print_newline ();

  print_endline "== 6. The same, end to end, with the full embedded corpus ==";
  let run = Cvl.Validator.run ~source:Rulesets.source ~manifest:Rulesets.manifest [ frame ] in
  let violations = Cvl.Report.violations run.Cvl.Validator.results in
  print_string (Cvl.Report.to_text violations);
  print_endline (Cvl.Report.summary_line (Cvl.Report.summarize run.Cvl.Validator.results))
