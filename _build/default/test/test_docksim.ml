open Docksim

let file path content = Frames.File.make ~content path
let add path content = Layer.Add (file path content)

let layer_cases =
  [
    Alcotest.test_case "later layers win" `Quick (fun () ->
        let image =
          Image.make ~reference:"t:1"
            [
              Layer.make ~id:"l1" ~created_by:"FROM base" [ add "/etc/x" "old" ];
              Layer.make ~id:"l2" ~created_by:"RUN sed" [ add "/etc/x" "new" ];
            ]
        in
        Alcotest.(check (option string)) "content" (Some "new")
          (Frames.Frame.read (Image.flatten image) "/etc/x"));
    Alcotest.test_case "whiteout removes lower files" `Quick (fun () ->
        let image =
          Image.make ~reference:"t:1"
            [
              Layer.make ~id:"l1" ~created_by:"FROM base" [ add "/etc/default-vhost" "x" ];
              Layer.make ~id:"l2" ~created_by:"RUN rm" [ Layer.Whiteout "/etc/default-vhost" ];
            ]
        in
        Alcotest.(check bool) "gone" false (Frames.Frame.exists (Image.flatten image) "/etc/default-vhost"));
    Alcotest.test_case "re-add after whiteout" `Quick (fun () ->
        let image =
          Image.make ~reference:"t:1"
            [
              Layer.make ~id:"l1" ~created_by:"a" [ add "/x" "1" ];
              Layer.make ~id:"l2" ~created_by:"b" [ Layer.Whiteout "/x" ];
              Layer.make ~id:"l3" ~created_by:"c" [ add "/x" "2" ];
            ]
        in
        Alcotest.(check (option string)) "readded" (Some "2")
          (Frames.Frame.read (Image.flatten image) "/x"));
    Alcotest.test_case "ops within a layer apply in order" `Quick (fun () ->
        let layer =
          Layer.make ~id:"l" ~created_by:"x" [ add "/x" "1"; Layer.Whiteout "/x"; add "/x" "2" ]
        in
        let frame = Layer.apply (Frames.Frame.create ~id:"t" Frames.Frame.Host) layer in
        Alcotest.(check (option string)) "last op wins" (Some "2") (Frames.Frame.read frame "/x"));
  ]

let image_cases =
  [
    Alcotest.test_case "image frame kind and runtime doc" `Quick (fun () ->
        let frame = Scenarios.Webstack.nginx_image_frame ~compliant:true in
        (match Frames.Frame.kind frame with
        | Frames.Frame.Docker_image _ -> ()
        | _ -> Alcotest.fail "wrong kind");
        Alcotest.(check bool) "config doc" true
          (Frames.Frame.runtime_doc frame "docker_image_config" <> None));
    Alcotest.test_case "config json carries USER and healthcheck" `Quick (fun () ->
        let image = Scenarios.Webstack.nginx_image ~compliant:true in
        let json = Image.config_json image in
        Alcotest.(check (option string)) "user" (Some "nginx")
          (Option.bind (Jsonlite.member "User" json) Jsonlite.get_str);
        Alcotest.(check bool) "healthcheck" true (Jsonlite.member "Healthcheck" json <> Some Jsonlite.Null));
    Alcotest.test_case "nginx image whiteout removed default vhost" `Quick (fun () ->
        let frame = Scenarios.Webstack.nginx_image_frame ~compliant:true in
        Alcotest.(check bool) "default vhost gone" false
          (Frames.Frame.exists frame "/etc/nginx/sites-enabled/default"));
  ]

let container_cases =
  [
    Alcotest.test_case "container inherits image files" `Quick (fun () ->
        let frame = Scenarios.Webstack.mysql_container_frame ~compliant:true in
        Alcotest.(check bool) "my.cnf" true (Frames.Frame.exists frame "/etc/mysql/my.cnf");
        match Frames.Frame.kind frame with
        | Frames.Frame.Container _ -> ()
        | _ -> Alcotest.fail "wrong kind");
    Alcotest.test_case "inspect document shape" `Quick (fun () ->
        let c = Scenarios.Webstack.nginx_container ~compliant:false in
        let doc = Container.inspect_json c in
        let hc = Option.get (Jsonlite.member "HostConfig" doc) in
        Alcotest.(check (option bool)) "privileged" (Some true)
          (Option.bind (Jsonlite.member "Privileged" hc) Jsonlite.get_bool);
        Alcotest.(check (option string)) "network" (Some "host")
          (Option.bind (Jsonlite.member "NetworkMode" hc) Jsonlite.get_str);
        let binds = Option.get (Jsonlite.member "Binds" hc) in
        Alcotest.(check bool) "docker.sock mounted" true
          (match binds with
          | Jsonlite.Arr items ->
            List.exists
              (fun b ->
                match Jsonlite.get_str b with
                | Some s -> Re.execp (Re.compile (Re.str "docker.sock")) s
                | None -> false)
              items
          | _ -> false));
    Alcotest.test_case "container processes attached" `Quick (fun () ->
        let frame = Scenarios.Webstack.nginx_container_frame ~compliant:true in
        Alcotest.(check bool) "nginx running" true
          (Frames.Frame.process_running frame "nginx -g daemon off;"));
  ]

(* Union-fs properties. *)
let ops_gen =
  QCheck.Gen.(
    let path = map (fun c -> Printf.sprintf "/f/%c" c) (char_range 'a' 'e') in
    list_size (int_range 0 20)
      (oneof
         [
           map (fun p -> Layer.Add (file p p)) path;
           map (fun p -> Layer.Whiteout p) path;
         ]))

let print_ops ops =
  String.concat ";"
    (List.map
       (function
         | Layer.Add f -> "+" ^ f.Frames.File.path
         | Layer.Whiteout p -> "-" ^ p)
       ops)

let split_prop =
  QCheck.Test.make ~count:300 ~name:"layer split point does not change the union"
    (QCheck.make ~print:(fun (ops, k) -> Printf.sprintf "%s @%d" (print_ops ops) k)
       QCheck.Gen.(pair ops_gen (int_range 0 20)))
    (fun (ops, k) ->
      let k = min k (List.length ops) in
      let take, drop =
        (List.filteri (fun i _ -> i < k) ops, List.filteri (fun i _ -> i >= k) ops)
      in
      let one = Image.flatten (Image.make ~reference:"t" [ Layer.make ~id:"a" ~created_by:"" ops ]) in
      let two =
        Image.flatten
          (Image.make ~reference:"t"
             [ Layer.make ~id:"a" ~created_by:"" take; Layer.make ~id:"b" ~created_by:"" drop ])
      in
      List.map (fun (f : Frames.File.t) -> (f.Frames.File.path, f.Frames.File.content))
        (Frames.Frame.all_files one)
      = List.map (fun (f : Frames.File.t) -> (f.Frames.File.path, f.Frames.File.content))
          (Frames.Frame.all_files two))

let whiteout_idempotent_prop =
  QCheck.Test.make ~count:300 ~name:"duplicate whiteout is idempotent"
    (QCheck.make ~print:print_ops ops_gen)
    (fun ops ->
      let double =
        List.concat_map (function Layer.Whiteout p -> [ Layer.Whiteout p; Layer.Whiteout p ] | op -> [ op ]) ops
      in
      let flat ops = Image.flatten (Image.make ~reference:"t" [ Layer.make ~id:"a" ~created_by:"" ops ]) in
      List.map (fun (f : Frames.File.t) -> f.Frames.File.path) (Frames.Frame.all_files (flat ops))
      = List.map (fun (f : Frames.File.t) -> f.Frames.File.path) (Frames.Frame.all_files (flat double)))

let suite =
  layer_cases @ image_cases @ container_cases
  @ [ QCheck_alcotest.to_alcotest split_prop; QCheck_alcotest.to_alcotest whiteout_idempotent_prop ]
