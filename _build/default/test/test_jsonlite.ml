open Jsonlite

let check_parse name input expected =
  Alcotest.test_case name `Quick (fun () ->
      let actual = parse_exn input in
      if not (equal actual expected) then
        Alcotest.failf "parsed %s, expected %s" (to_string actual) (to_string expected))

let check_error name input =
  Alcotest.test_case name `Quick (fun () ->
      match parse input with
      | Ok v -> Alcotest.failf "expected error, got %s" (to_string v)
      | Error _ -> ())

let cases =
  [
    check_parse "empty object" "{}" (Obj []);
    check_parse "empty array" "[]" (Arr []);
    check_parse "scalars" {|[null, true, false, 1, -2.5, "s"]|}
      (Arr [ Null; Bool true; Bool false; Num 1.; Num (-2.5); Str "s" ]);
    check_parse "nested" {|{"a": {"b": [1, {"c": 2}]}}|}
      (Obj [ ("a", Obj [ ("b", Arr [ Num 1.; Obj [ ("c", Num 2.) ] ]) ]) ]);
    check_parse "string escapes" {|"a\"b\\c\nd\te"|} (Str "a\"b\\c\nd\te");
    check_parse "unicode escape ascii" {|"A"|} (Str "A");
    check_parse "whitespace tolerated" "  { \"a\" :\n 1 }  " (Obj [ ("a", Num 1.) ]);
    check_parse "exponent" "[1e3]" (Arr [ Num 1000. ]);
    check_error "trailing comma" "[1,]";
    check_error "single quotes" "{'a': 1}";
    check_error "bare word" "nope";
    check_error "trailing garbage" "{} x";
    check_error "unterminated string" {|"abc|};
    check_error "control char in string" "\"a\nb\"";
  ]

let docker_inspect_case =
  Alcotest.test_case "docker inspect document" `Quick (fun () ->
      let c = Scenarios.Webstack.nginx_container ~compliant:false in
      let doc = Docksim.Container.inspect_json c in
      let reparsed = parse_exn (to_string doc) in
      Alcotest.(check bool) "roundtrip" true (equal doc reparsed);
      match member "HostConfig" reparsed with
      | Some hc ->
        Alcotest.(check (option bool)) "privileged" (Some true)
          (Option.bind (member "Privileged" hc) get_bool)
      | None -> Alcotest.fail "HostConfig missing")

let json_gen =
  let open QCheck.Gen in
  let key_gen = string_size ~gen:(char_range 'a' 'z') (int_range 1 6) in
  let scalar =
    oneof
      [
        return Null;
        map (fun b -> Bool b) bool;
        map (fun i -> Num (float_of_int i)) small_signed_int;
        map (fun s -> Str s) (string_size ~gen:printable (int_range 0 10));
      ]
  in
  let rec value depth =
    if depth = 0 then scalar
    else
      frequency
        [
          (3, scalar);
          (1, map (fun l -> Arr l) (list_size (int_range 0 4) (value (depth - 1))));
          ( 1,
            map
              (fun kvs ->
                let seen = Hashtbl.create 8 in
                Obj
                  (List.filter
                     (fun (k, _) ->
                       if Hashtbl.mem seen k then false else (Hashtbl.add seen k (); true))
                     kvs))
              (list_size (int_range 0 4) (pair key_gen (value (depth - 1)))) );
        ]
  in
  value 3

let roundtrip_prop =
  QCheck.Test.make ~count:500 ~name:"json to_string/parse roundtrip"
    (QCheck.make ~print:to_string json_gen)
    (fun v ->
      match parse (to_string v) with
      | Ok v' -> equal v v'
      | Error e -> QCheck.Test.fail_reportf "reparse failed: %s" (error_to_string e))

let pretty_roundtrip_prop =
  QCheck.Test.make ~count:200 ~name:"json pretty/parse roundtrip"
    (QCheck.make ~print:to_string json_gen)
    (fun v -> match parse (pretty v) with Ok v' -> equal v v' | Error _ -> false)

let suite =
  cases
  @ [ docker_inspect_case; QCheck_alcotest.to_alcotest roundtrip_prop;
      QCheck_alcotest.to_alcotest pretty_roundtrip_prop ]
