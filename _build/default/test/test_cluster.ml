(* Fleet-scoped (scope: cluster) rules: aggregator verdicts over
   synthetic replica fleets, three-engine byte-identity, the daemon
   differential (streamed cluster verdicts identical to one-shot runs),
   incremental revalidation, and the order-invariance property — a
   cluster verdict is a pure function of the frame *set*, so permuting
   frame arrival order cannot change a byte. *)

open Cvl

let manifest_yaml =
  {|app:
  enabled: True
  config_search_paths:
    - /etc/app
  cvl_file: "component_configs/app.yaml"
  lens: properties
|}

let rules_yaml =
  {|rules:
  - cluster_rule_name: cache_uniform
    scope: cluster
    aggregate: equal_across
    config_path: ["cache_size"]
    file_context: ["app.properties"]
    matched_description: "cache_size agrees across the fleet."
    not_matched_preferred_value_description: "cache_size drifts across the fleet."
    not_present_description: "no replica declares cache_size."
    tags: ["#fleet"]
  - cluster_rule_name: upstreams_resolve
    scope: cluster
    aggregate: exists_referent
    config_path: ["upstream"]
    referent_config_path: "advertised_name"
    value_separator: ","
    file_context: ["app.properties"]
    not_matched_preferred_value_description: "an upstream names no fleet member."
    tags: ["#fleet"]
  - cluster_rule_name: quorum
    scope: cluster
    aggregate: count
    config_path: ["cache_size"]
    min_frames: 3
    file_context: ["app.properties"]
    matched_description: "the replica quorum is satisfied."
    not_matched_preferred_value_description: "too few replicas participate."
    tags: ["#fleet"]
  - cluster_rule_name: shard_agreement
    scope: cluster
    aggregate: consistent_across
    config_path: ["shard_weight"]
    group_by: shard_group
    file_context: ["app.properties"]
    not_matched_preferred_value_description: "a shard group disagrees on its weight."
    tags: ["#fleet"]
  - config_name: cache_size
    config_path: [""]
    file_context: ["app.properties"]
    check_presence_only: True
    not_present_description: "a replica has no cache_size."
    tags: ["#fleet"]
|}

let manifest = Manifest.parse_exn manifest_yaml
let source = Loader.assoc_source [ ("component_configs/app.yaml", rules_yaml) ]
let rules () = Result.get_ok (Validator.load_rules ~source ~manifest)

let replica ~id ~cache ~shard ~weight ~upstreams =
  let content =
    Printf.sprintf
      "advertised_name=%s\ncache_size=%s\nupstream=%s\nshard_group=%s\nshard_weight=%s\n" id
      cache (String.concat "," upstreams) shard weight
  in
  Frames.Frame.add_file
    (Frames.Frame.create ~id Frames.Frame.Host)
    (Frames.File.make ~content "/etc/app/app.properties")

let ids n = List.init n (fun i -> Printf.sprintf "web-%d" i)

(* n replicas, caches equal, upstreams all point at fleet members, and
   shard groups a/b each agree on their weight. *)
let compliant_fleet n =
  let all = ids n in
  List.mapi
    (fun i id ->
      let shard = if i mod 2 = 0 then "a" else "b" in
      let weight = if i mod 2 = 0 then "10" else "20" in
      replica ~id ~cache:"64" ~shard ~weight ~upstreams:all)
    all

(* web-0 drifts on every axis: cache differs, an upstream names a ghost
   replica, and its shard-a weight disagrees with the other members. *)
let drifted_fleet n =
  let all = ids n in
  List.mapi
    (fun i id ->
      let shard = if i mod 2 = 0 then "a" else "b" in
      if i = 0 then
        replica ~id ~cache:"128" ~shard ~weight:"11" ~upstreams:("web-999" :: all)
      else
        let weight = if i mod 2 = 0 then "10" else "20" in
        replica ~id ~cache:"64" ~shard ~weight ~upstreams:all)
    all

let result_sig (r : Engine.result) =
  ( r.Engine.entity,
    r.Engine.frame_id,
    Rule.name r.Engine.rule,
    Engine.verdict_to_string r.Engine.verdict,
    r.Engine.detail,
    String.concat "\x00" r.Engine.evidence )

let sig_t =
  Alcotest.(list (pair (pair string string) (pair (pair string string) (pair string string))))

let nest (a, b, c, d, e, f) = ((a, b), ((c, d), (e, f)))
let signature results = List.map (fun r -> nest (result_sig r)) results

let run ?tags ?(engine = `Fused) frames =
  (Validator.run ?tags ~engine ~source ~manifest frames).Validator.results

let verdict_of results name =
  match
    List.find_opt (fun (r : Engine.result) -> Rule.name r.Engine.rule = name) results
  with
  | Some r -> Engine.verdict_to_string r.Engine.verdict
  | None -> "absent"

let check_verdict results name expected =
  Alcotest.(check string) name expected (verdict_of results name)

let aggregator_cases =
  [
    Alcotest.test_case "compliant fleet: all four aggregators match" `Quick (fun () ->
        let results = run (compliant_fleet 4) in
        check_verdict results "cache_uniform" "matched";
        check_verdict results "upstreams_resolve" "matched";
        check_verdict results "quorum" "matched";
        check_verdict results "shard_agreement" "matched");
    Alcotest.test_case "drifted fleet: every cross-frame invariant breaks" `Quick (fun () ->
        let results = run (drifted_fleet 4) in
        check_verdict results "cache_uniform" "not-matched";
        check_verdict results "upstreams_resolve" "not-matched";
        check_verdict results "shard_agreement" "not-matched";
        (* All four frames still participate, so the quorum holds. *)
        check_verdict results "quorum" "matched");
    Alcotest.test_case "cluster verdicts carry the participating frames" `Quick (fun () ->
        let results = run (drifted_fleet 3) in
        let r =
          List.find (fun (r : Engine.result) -> Rule.name r.Engine.rule = "cache_uniform") results
        in
        Alcotest.(check string)
          "fleet pseudo-frame" "deployment(3 frames)" r.Engine.frame_id;
        Alcotest.(check string)
          "participants line" "participants: web-0, web-1, web-2 (3/3 frames)"
          (List.hd r.Engine.evidence);
        Alcotest.(check bool)
          "per-frame value sets listed" true
          (List.mem "web-0: [128]" r.Engine.evidence && List.mem "web-1: [64]" r.Engine.evidence));
    Alcotest.test_case "quorum bounds fail below min_frames" `Quick (fun () ->
        let results = run (compliant_fleet 2) in
        check_verdict results "quorum" "not-matched";
        let r =
          List.find (fun (r : Engine.result) -> Rule.name r.Engine.rule = "quorum") results
        in
        Alcotest.(check bool)
          "bounds text present" true
          (List.mem "expected at least 3 participating frame(s), found 2" r.Engine.evidence));
    Alcotest.test_case "no participating frame: not-present, count excepted" `Quick (fun () ->
        let bare = Frames.Frame.create ~id:"empty" Frames.Frame.Host in
        let results = run [ bare; bare ] in
        check_verdict results "cache_uniform" "not-present";
        check_verdict results "upstreams_resolve" "not-present";
        check_verdict results "shard_agreement" "not-present";
        (* count asserts the census itself, so zero participants is a
           verdict, not an absence. *)
        check_verdict results "quorum" "not-matched");
    Alcotest.test_case "single-frame deployment uses the frame id" `Quick (fun () ->
        let results = run [ List.hd (compliant_fleet 1) ] in
        let r =
          List.find (fun (r : Engine.result) -> Rule.name r.Engine.rule = "cache_uniform") results
        in
        Alcotest.(check string) "frame id" "web-0" r.Engine.frame_id);
    Alcotest.test_case "tag filtering reaches cluster rules" `Quick (fun () ->
        let results = run ~tags:[ "#nothing" ] (compliant_fleet 3) in
        Alcotest.(check string) "filtered out" "absent" (verdict_of results "cache_uniform"));
    Alcotest.test_case "configured descriptions drive the detail line" `Quick (fun () ->
        let results = run (drifted_fleet 4) in
        let r =
          List.find (fun (r : Engine.result) -> Rule.name r.Engine.rule = "cache_uniform") results
        in
        Alcotest.(check string)
          "not_matched_description" "cache_size drifts across the fleet." r.Engine.detail);
  ]

let engine_cases =
  [
    Alcotest.test_case "three engines byte-identical on cluster fleets" `Quick (fun () ->
        List.iter
          (fun (label, frames) ->
            let fused = signature (run ~engine:`Fused frames) in
            let compiled = signature (run ~engine:`Compiled frames) in
            let interpreted = signature (run ~engine:`Interpreted frames) in
            Alcotest.(check sig_t) (label ^ ": fused = compiled") fused compiled;
            Alcotest.(check sig_t) (label ^ ": fused = interpreted") fused interpreted)
          [
            ("compliant", compliant_fleet 4);
            ("drifted", drifted_fleet 5);
            ("below quorum", compliant_fleet 2);
          ]);
    Alcotest.test_case "jobs do not change cluster verdicts" `Quick (fun () ->
        let frames = drifted_fleet 4 in
        let seq = (Validator.run ~source ~manifest ~jobs:1 frames).Validator.results in
        let par = (Validator.run ~source ~manifest ~jobs:4 frames).Validator.results in
        Alcotest.(check sig_t) "jobs=1 = jobs=4" (signature seq) (signature par));
    Alcotest.test_case "incremental revalidation recomputes cluster verdicts" `Quick (fun () ->
        let rules = rules () in
        let f = List.hd (compliant_fleet 1) in
        let previous = (Validator.run_loaded ~rules [ f ]).Validator.results in
        let f' =
          Frames.Frame.set_content f ~path:"/etc/app/app.properties"
            "advertised_name=web-0\nupstream=web-0,web-7\n"
        in
        let merged, _ =
          Incremental.revalidate ~rules ~previous ~diff:(Frames.Diff.between f f') f'
        in
        let full = (Validator.run_loaded ~rules [ f' ]).Validator.results in
        Alcotest.(check sig_t) "incremental = full run" (signature full) (signature merged));
  ]

let daemon_cases =
  [
    Alcotest.test_case "daemon streams cluster verdicts byte-identical to one-shot" `Quick
      (fun () ->
        let server = Result.get_ok (Daemon.Server.create ~source ~manifest ()) in
        let client = Daemon.Client.in_process server in
        Fun.protect
          ~finally:(fun () ->
            Daemon.Client.close client;
            Daemon.Server.destroy server)
          (fun () ->
            List.iter
              (fun ((engine : Daemon.Protocol.engine), frames) ->
                let reference = signature (run ~engine:(engine :> [ `Fused | `Compiled | `Interpreted ]) frames) in
                let streamed = ref [] in
                (match
                   Daemon.Client.validate client
                     ~on_verdict:(fun (v : Daemon.Protocol.verdict) ->
                       streamed :=
                         nest
                           ( v.Daemon.Protocol.v_entity,
                             v.Daemon.Protocol.v_frame,
                             v.Daemon.Protocol.v_rule,
                             v.Daemon.Protocol.v_verdict,
                             v.Daemon.Protocol.v_detail,
                             String.concat "\x00" v.Daemon.Protocol.v_evidence )
                         :: !streamed)
                     (Daemon.Protocol.job ~frames ~engine ())
                 with
                | Error m -> Alcotest.failf "stream failed: %s" m
                | Ok _ -> ());
                Alcotest.(check sig_t)
                  (Daemon.Protocol.engine_to_string engine ^ ": stream = one-shot")
                  reference (List.rev !streamed))
              [
                (`Fused, drifted_fleet 4);
                (`Compiled, drifted_fleet 4);
                (`Interpreted, compliant_fleet 3);
              ]));
  ]

(* ---------------------------------------------------------------- *)
(* Order invariance                                                  *)
(* ---------------------------------------------------------------- *)

(* A random fleet spec: per replica, a cache value drawn from a small
   alphabet (so drift appears with useful probability), plus a
   permutation seed for the arrival order. *)
let fleet_spec_gen =
  QCheck.Gen.(
    let* n = int_range 2 6 in
    let* caches = list_size (return n) (int_range 0 2) in
    let* seed = int_range 0 1_000_000 in
    return (caches, seed))

let print_spec (caches, seed) =
  Printf.sprintf "caches=[%s] seed=%d"
    (String.concat ";" (List.map string_of_int caches))
    seed

let fleet_of_caches caches =
  let n = List.length caches in
  let all = ids n in
  List.mapi
    (fun i cache ->
      replica
        ~id:(List.nth all i)
        ~cache:(string_of_int (64 + cache))
        ~shard:(if i mod 2 = 0 then "a" else "b")
        ~weight:(string_of_int cache) ~upstreams:all)
    caches

(* Deterministic Fisher–Yates from an explicit seed. *)
let shuffle seed l =
  let st = Random.State.make [| seed |] in
  let a = Array.of_list l in
  for i = Array.length a - 1 downto 1 do
    let j = Random.State.int st (i + 1) in
    let t = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- t
  done;
  Array.to_list a

(* Per-frame results follow arrival order by design; the invariance
   claim is about the fleet-scoped verdicts. *)
let cluster_signature results =
  signature
    (List.filter
       (fun (r : Engine.result) ->
         match r.Engine.rule with Rule.Cluster _ -> true | _ -> false)
       results)

let property_cases =
  [
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~count:100
         ~name:"equal_across is invariant in frame arrival order"
         (QCheck.make ~print:print_spec fleet_spec_gen)
         (fun (caches, seed) ->
           let fleet = fleet_of_caches caches in
           let baseline = cluster_signature (run fleet) in
           let permuted = cluster_signature (run (shuffle seed fleet)) in
           baseline <> [] && baseline = permuted));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~count:50
         ~name:"all three engines agree on random fleets"
         (QCheck.make ~print:print_spec fleet_spec_gen)
         (fun (caches, seed) ->
           let fleet = shuffle seed (fleet_of_caches caches) in
           let fused = signature (run ~engine:`Fused fleet) in
           fused = signature (run ~engine:`Compiled fleet)
           && fused = signature (run ~engine:`Interpreted fleet)));
  ]

let suite = aggregator_cases @ engine_cases @ daemon_cases @ property_cases
