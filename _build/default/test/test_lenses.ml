let parse_tree lens_name input =
  match Lenses.Registry.parse ~lens_name ~path:"/test" input with
  | Ok (Lenses.Lens.Tree forest) -> forest
  | Ok (Lenses.Lens.Table t) -> Alcotest.failf "expected tree, got table %s" t.Configtree.Table.name
  | Error e -> Alcotest.fail e

let parse_table lens_name input =
  match Lenses.Registry.parse ~lens_name ~path:"/test" input with
  | Ok (Lenses.Lens.Table t) -> t
  | Ok (Lenses.Lens.Tree _) -> Alcotest.fail "expected table, got tree"
  | Error e -> Alcotest.fail e

let values forest path = Configtree.Path.find_values_str forest path

let sshd_cases =
  [
    Alcotest.test_case "sshd basic keywords" `Quick (fun () ->
        let f = parse_tree "sshd" "PermitRootLogin no\nPort 22\nPort 2222\n# comment\n" in
        Alcotest.(check (list string)) "prl" [ "no" ] (values f "PermitRootLogin");
        Alcotest.(check (list string)) "ports" [ "22"; "2222" ] (values f "Port"));
    Alcotest.test_case "sshd match blocks" `Quick (fun () ->
        let f = parse_tree "sshd" "PermitRootLogin no\nMatch User deploy\n  PasswordAuthentication no\n" in
        Alcotest.(check (list string)) "inner" [ "no" ] (values f "Match/PasswordAuthentication");
        Alcotest.(check (list string)) "cond" [ "User deploy" ] (values f "Match"));
  ]

let ini_cases =
  [
    Alcotest.test_case "ini sections and bare keys" `Quick (fun () ->
        let f =
          parse_tree "ini"
            "global = 1\n[mysqld]\nuser = mysql\nskip-networking\nport: 3306\n; comment\n[client]\nport = 3306\n"
        in
        Alcotest.(check (list string)) "global" [ "1" ] (values f "global");
        Alcotest.(check (list string)) "user" [ "mysql" ] (values f "mysqld/user");
        Alcotest.(check (list string)) "bare key" [ "" ] (values f "mysqld/skip-networking");
        Alcotest.(check (list string)) "colon sep" [ "3306" ] (values f "mysqld/port");
        Alcotest.(check (list string)) "second section" [ "3306" ] (values f "client/port"));
  ]

let nginx_cases =
  [
    Alcotest.test_case "nginx nested blocks" `Quick (fun () ->
        let f =
          parse_tree "nginx"
            "user www-data;\nhttp {\n  server {\n    listen 443 ssl;\n    location / { proxy_pass http://app; }\n  }\n}\n"
        in
        Alcotest.(check (list string)) "listen" [ "443 ssl" ] (values f "http/server/listen");
        Alcotest.(check (list string)) "loc arg" [ "/" ] (values f "http/server/location");
        Alcotest.(check (list string)) "proxy" [ "http://app" ] (values f "http/server/location/proxy_pass"));
    Alcotest.test_case "nginx add_header specialization" `Quick (fun () ->
        let f = parse_tree "nginx" "server { add_header X-Frame-Options SAMEORIGIN; add_header HSTS x; }\n" in
        Alcotest.(check (list string)) "xfo" [ "SAMEORIGIN" ] (values f "server/add_header X-Frame-Options"));
    Alcotest.test_case "nginx quoted args and comments" `Quick (fun () ->
        let f = parse_tree "nginx" "server {\n  # c\n  add_header Strict-Transport-Security \"max-age=3; x\";\n}\n" in
        Alcotest.(check (list string)) "quoted" [ "max-age=3; x" ]
          (values f "server/add_header Strict-Transport-Security"));
    Alcotest.test_case "nginx errors" `Quick (fun () ->
        Alcotest.(check bool) "missing brace" true
          (Result.is_error (Lenses.Registry.parse ~lens_name:"nginx" ~path:"/t" "http { server {\n"));
        Alcotest.(check bool) "missing semicolon" true
          (Result.is_error (Lenses.Registry.parse ~lens_name:"nginx" ~path:"/t" "http { listen 80 }\n")));
  ]

let apache_cases =
  [
    Alcotest.test_case "apache containers" `Quick (fun () ->
        let f =
          parse_tree "apache"
            "ServerTokens Prod\n<VirtualHost *:443>\n  SSLEngine on\n  <Directory /srv>\n    Options -Indexes\n  </Directory>\n</VirtualHost>\n"
        in
        Alcotest.(check (list string)) "tokens" [ "Prod" ] (values f "ServerTokens");
        Alcotest.(check (list string)) "vhost arg" [ "*:443" ] (values f "VirtualHost");
        Alcotest.(check (list string)) "ssl" [ "on" ] (values f "VirtualHost/SSLEngine");
        Alcotest.(check (list string)) "nested dir" [ "-Indexes" ]
          (values f "VirtualHost/Directory/Options"));
    Alcotest.test_case "apache continuation lines" `Quick (fun () ->
        let f = parse_tree "apache" "LogFormat \"a\" \\\n  combined\n" in
        Alcotest.(check int) "one directive" 1 (List.length (values f "LogFormat")));
    Alcotest.test_case "apache header specialization" `Quick (fun () ->
        let f = parse_tree "apache" "Header always append X-Frame-Options SAMEORIGIN\n" in
        Alcotest.(check (list string)) "xfo" [ "SAMEORIGIN" ] (values f "Header X-Frame-Options"));
    Alcotest.test_case "apache unclosed section errors" `Quick (fun () ->
        Alcotest.(check bool) "error" true
          (Result.is_error (Lenses.Registry.parse ~lens_name:"apache" ~path:"/t" "<VirtualHost *>\nX y\n")));
  ]

let schema_cases =
  [
    Alcotest.test_case "passwd table" `Quick (fun () ->
        let t = parse_table "passwd" "root:x:0:0:root:/root:/bin/bash\nmysql:x:105:114::/nonexistent:/bin/false\n" in
        Alcotest.(check (list string)) "names" [ "root"; "mysql" ]
          (Configtree.Table.column_values t ~column:"name");
        Alcotest.(check (list string)) "uids" [ "0"; "105" ]
          (Configtree.Table.column_values t ~column:"uid"));
    Alcotest.test_case "fstab table" `Quick (fun () ->
        let t = parse_table "fstab" "UUID=1 / ext4 defaults 0 1\ntmpfs /run/shm tmpfs nodev 0 0\n" in
        Alcotest.(check (list string)) "dirs" [ "/"; "/run/shm" ]
          (Configtree.Table.column_values t ~column:"dir"));
    Alcotest.test_case "audit watch and syscall rows" `Quick (fun () ->
        let t =
          parse_table "audit"
            "-w /etc/passwd -p wa -k identity\n-a always,exit -F arch=b64 -S mount -k mounts\n-e 2\n"
        in
        Alcotest.(check (list string)) "kinds" [ "watch"; "syscall"; "control" ]
          (Configtree.Table.column_values t ~column:"kind");
        Alcotest.(check (list string)) "paths" [ "/etc/passwd"; ""; "" ]
          (Configtree.Table.column_values t ~column:"path");
        Alcotest.(check (list string)) "actions" [ ""; "always,exit"; "enabled=2" ]
          (Configtree.Table.column_values t ~column:"action"));
    Alcotest.test_case "audit rejects junk" `Quick (fun () ->
        Alcotest.(check bool) "error" true
          (Result.is_error (Lenses.Registry.parse ~lens_name:"audit" ~path:"/t" "frobnicate\n")));
    Alcotest.test_case "modprobe directives" `Quick (fun () ->
        let t = parse_table "modprobe" "install cramfs /bin/true\nblacklist usb-storage\noptions snd x=1\n" in
        Alcotest.(check (list string)) "directives" [ "install"; "blacklist"; "options" ]
          (Configtree.Table.column_values t ~column:"directive");
        Alcotest.(check (list string)) "args" [ "/bin/true"; ""; "x=1" ]
          (Configtree.Table.column_values t ~column:"args"));
    Alcotest.test_case "hosts table" `Quick (fun () ->
        let t = parse_table "hosts" "127.0.0.1 localhost lo\n::1 ip6-localhost\n" in
        Alcotest.(check (list string)) "hostnames" [ "localhost lo"; "ip6-localhost" ]
          (Configtree.Table.column_values t ~column:"hostnames"));
    Alcotest.test_case "rawlines table" `Quick (fun () ->
        let t = parse_table "lines" "alpha\n# comment\nbeta gamma\n" in
        Alcotest.(check (list string)) "lines" [ "alpha"; "beta gamma" ]
          (Configtree.Table.column_values t ~column:"line"));
  ]

let misc_cases =
  [
    Alcotest.test_case "sysctl dotted keys" `Quick (fun () ->
        let f = parse_tree "sysctl" "net.ipv4.ip_forward = 0\nkernel.sysrq=0\n" in
        Alcotest.(check (list string)) "fwd" [ "0" ] (values f "net.ipv4.ip_forward");
        Alcotest.(check (list string)) "sysrq" [ "0" ] (values f "kernel.sysrq"));
    Alcotest.test_case "sysctl rejects non-kv" `Quick (fun () ->
        Alcotest.(check bool) "error" true
          (Result.is_error (Lenses.Registry.parse ~lens_name:"sysctl" ~path:"/t" "what is this\n")));
    Alcotest.test_case "properties continuation" `Quick (fun () ->
        let f = parse_tree "properties" "key=a\\\nb\n! bang comment\nother: v\n" in
        Alcotest.(check (list string)) "joined" [ "a b" ] (values f "key");
        Alcotest.(check (list string)) "colon" [ "v" ] (values f "other"));
    Alcotest.test_case "json lens arrays become repeats" `Quick (fun () ->
        let f = parse_tree "json" {|{"icc": false, "dns": ["8.8.8.8", "1.1.1.1"], "log-opts": {"max-size": "10m"}}|} in
        Alcotest.(check (list string)) "icc" [ "false" ] (values f "icc");
        Alcotest.(check (list string)) "dns" [ "8.8.8.8"; "1.1.1.1" ] (values f "dns");
        Alcotest.(check (list string)) "nested" [ "10m" ] (values f "log-opts/max-size"));
    Alcotest.test_case "registry path inference" `Quick (fun () ->
        let name path =
          Option.map (fun (l : Lenses.Lens.t) -> l.Lenses.Lens.name) (Lenses.Registry.for_path path)
        in
        Alcotest.(check (option string)) "sshd" (Some "sshd") (name "/etc/ssh/sshd_config");
        Alcotest.(check (option string)) "sysctl.d" (Some "sysctl") (name "/etc/sysctl.d/99-x.conf");
        Alcotest.(check (option string)) "sites-enabled" (Some "nginx") (name "/etc/nginx/sites-enabled/shop");
        Alcotest.(check (option string)) "my.cnf" (Some "ini") (name "/etc/mysql/my.cnf");
        Alcotest.(check (option string)) "daemon.json" (Some "json") (name "/etc/docker/daemon.json");
        Alcotest.(check (option string)) "hadoop" (Some "hadoop") (name "/etc/hadoop/conf/hdfs-site.xml");
        Alcotest.(check (option string)) "passwd" (Some "passwd") (name "/etc/passwd"));
    Alcotest.test_case "unknown lens name errors" `Quick (fun () ->
        Alcotest.(check bool) "error" true
          (Result.is_error (Lenses.Registry.parse ~lens_name:"nope" ~path:"/x" "")));
  ]

(* Round-trip stability: parse -> render -> parse is a fixed point for
   lenses that provide a renderer, over realistic inputs. *)
let stability name lens_name input =
  Alcotest.test_case (name ^ " render stability") `Quick (fun () ->
      let lens = Option.get (Lenses.Registry.find lens_name) in
      let n1 = Result.get_ok (lens.Lenses.Lens.parse ~filename:"/t" input) in
      match lens.Lenses.Lens.render with
      | None -> Alcotest.fail "lens has no renderer"
      | Some render -> (
        let text = Option.get (render n1) in
        match lens.Lenses.Lens.parse ~filename:"/t" text with
        | Ok n2 -> (
          match (n1, n2) with
          | Lenses.Lens.Tree f1, Lenses.Lens.Tree f2 ->
            Alcotest.(check bool) "tree fixed point" true (List.equal Configtree.Tree.equal f1 f2)
          | Lenses.Lens.Table t1, Lenses.Lens.Table t2 ->
            Alcotest.(check (list (list string))) "rows fixed point" t1.Configtree.Table.rows
              t2.Configtree.Table.rows
          | _ -> Alcotest.fail "normal form changed")
        | Error e -> Alcotest.fail e))

let stability_cases =
  [
    stability "sshd" "sshd" Scenarios.Host.good_sshd_config;
    stability "sysctl" "sysctl" Scenarios.Host.good_sysctl_conf;
    stability "fstab" "fstab" Scenarios.Host.good_fstab;
    stability "modprobe" "modprobe" Scenarios.Host.good_modprobe;
    stability "audit" "audit" Scenarios.Host.good_audit_rules;
    stability "ini" "ini" Scenarios.Webstack.good_my_cnf;
    stability "nginx" "nginx" Scenarios.Webstack.good_nginx_conf;
    stability "passwd" "passwd" Scenarios.Host.etc_passwd;
  ]

let suite =
  sshd_cases @ ini_cases @ nginx_cases @ apache_cases @ schema_cases @ misc_cases @ stability_cases
