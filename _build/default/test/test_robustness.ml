(* Fuzz-style robustness: every parser in the stack must return a
   structured result (or its declared exception) on arbitrary input —
   never a stack overflow, Not_found, Invalid_argument, or other leak.
   Production ConfigValidator feeds these parsers whatever bytes the
   crawler finds. *)

let garbage =
  QCheck.Gen.(
    let any_char = map Char.chr (int_range 0 127) in
    let structured_char =
      oneofl
        [ 'a'; 'b'; ':'; '-'; ' '; '\n'; '\t'; '"'; '\''; '['; ']'; '{'; '}'; '#'; '|'; '>';
          '&'; '*'; '!'; '%'; '@'; '`'; ','; '?'; '='; '<'; '/'; '.'; '('; ')'; '\\'; ';' ]
    in
    string_size ~gen:(frequency [ (1, any_char); (3, structured_char) ]) (int_range 0 64))

let total ?(count = 1500) name f =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count ~name (QCheck.make ~print:String.escaped garbage) (fun input ->
         match f input with
         | () -> true
         | exception e ->
           QCheck.Test.fail_reportf "leaked exception %s on %S" (Printexc.to_string e) input))

let parser_cases =
  [
    total "yaml parser is total" (fun s -> ignore (Yamlite.Parse.string s));
    total "yaml multi-doc parser is total" (fun s -> ignore (Yamlite.Parse.multi s));
    total "json parser is total" (fun s -> ignore (Jsonlite.parse s));
    total "xml parser is total" (fun s -> ignore (Xmllite.parse s));
    total "composite expression parser is total" (fun s -> ignore (Cvl.Expr.parse s));
    total "matcher spec parser is total" (fun s -> ignore (Cvl.Matcher.parse s));
    total "path parser is total" (fun s -> ignore (Configtree.Path.parse s));
    total "manifest parser is total" (fun s -> ignore (Cvl.Manifest.parse s));
    total "rule loader is total" (fun s -> ignore (Cvl.Loader.parse_rules s));
    total "cpl parser is total" (fun s -> ignore (Confvalley.Cpl.parse s));
    total ~count:400 "bash emulator is total" (fun s ->
        ignore (Inspeclite.Bash_emu.run (Scenarios.Host.compliant ()) s));
  ]

let lens_cases =
  List.map
    (fun (lens : Lenses.Lens.t) ->
      total ~count:500
        (Printf.sprintf "%s lens is total" lens.Lenses.Lens.name)
        (fun s -> ignore (lens.Lenses.Lens.parse ~filename:"/fuzz" s)))
    Lenses.Registry.all

(* Registry.parse adds name resolution and path inference on top of the
   lenses; both entry points must stay total too. *)
let registry_cases =
  List.map
    (fun (lens : Lenses.Lens.t) ->
      total ~count:300
        (Printf.sprintf "registry parse via %s is total" lens.Lenses.Lens.name)
        (fun s -> ignore (Lenses.Registry.parse ~lens_name:lens.Lenses.Lens.name ~path:"/fuzz" s)))
    Lenses.Registry.all
  @ [
      total ~count:500 "registry parse with inferred lens is total" (fun s ->
          List.iter
            (fun path -> ignore (Lenses.Registry.parse ~path s))
            [ "/etc/my.cnf"; "/etc/nginx/nginx.conf"; "/app/config.json"; "/app/config.yaml";
              "/etc/ssh/sshd_config"; "/etc/fstab"; "/no/lens/matches/this" ]);
    ]

(* Report renderers must be total over results carrying Engine_error
   verdicts with arbitrary messages — the degraded-mode path that chaos
   runs exercise. XML/JSON escaping of hostile bytes lives here. *)
let error_result message stage =
  {
    Cvl.Engine.entity = "fuzz";
    frame_id = "frame<&>\"1\"";
    rule = Cvl.Rule.Composite { Cvl.Rule.composite_common = Cvl.Rule.common "c"; expression = "a.b" };
    verdict = Cvl.Engine.Engine_error { stage; message };
    detail = "contained failure: " ^ message;
    evidence = [ message; "path=<\"&'>" ];
  }

let degraded_health =
  Cvl.Resilience.make_health ~extract_errors:1 ~normalize_errors:1 ~evaluate_errors:1
    {
      Cvl.Resilience.retries = 2;
      breaker_trips = 1;
      contained = 3;
      faults_injected = 4;
      simulated_ms = 150;
    }

let renderer_cases =
  [
    total ~count:500 "report renderers are total over engine errors" (fun s ->
        let results =
          [
            error_result s Cvl.Resilience.Extract;
            error_result s Cvl.Resilience.Normalize;
            error_result s Cvl.Resilience.Evaluate;
          ]
        in
        let text = Cvl.Report.to_text ~verbose:true ~health:degraded_health results in
        let junit = Cvl.Report.to_junit ~health:degraded_health results in
        let json = Jsonlite.to_string (Cvl.Report.to_json ~health:degraded_health results) in
        if String.length text = 0 || String.length junit = 0 || String.length json = 0 then
          failwith "a renderer produced no output";
        (* JSON output must round-trip through our own parser whatever
           the error message contains. *)
        match Jsonlite.parse json with
        | Ok _ -> ()
        | Error _ -> failwith "rendered JSON does not re-parse");
  ]

(* Structured-but-hostile CVL documents: the loader must reject or load,
   never crash, and accepted rules must evaluate without exceptions. *)
let rule_fragments =
  QCheck.Gen.(
    let key =
      oneofl
        [ "config_name"; "config_path"; "preferred_value"; "preferred_value_match";
          "non_preferred_value"; "file_context"; "tags"; "path_name"; "permission";
          "ownership"; "script_name"; "script"; "composite_rule_name"; "composite_rule";
          "config_schema_name"; "query_constraints"; "query_constraints_value"; "expect_rows";
          "not_present_pass"; "check_presence_only"; "value_separator"; "disabled" ]
    in
    let value =
      oneofl
        [ "x"; "[\"a\", \"b\"]"; "true"; "substr,any"; "644"; "\"0:0\""; "[\"\"]"; "1";
          "\"dir = ?\""; "a.b && c.d"; "regex,all"; "[]"; "99999"; "-1" ]
    in
    let* n = int_range 1 8 in
    let* kvs = list_repeat n (pair key value) in
    return
      (String.concat "\n" (List.map (fun (k, v) -> Printf.sprintf "%s: %s" k v) kvs) ^ "\n"))

let hostile_rules =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:800 ~name:"hostile rule documents load-or-reject and evaluate"
       (QCheck.make ~print:(fun s -> s) rule_fragments)
       (fun doc ->
         match Cvl.Loader.parse_rules doc with
         | Error _ -> true
         | Ok rules -> (
           let frame = Scenarios.Host.compliant () in
           let ctx =
             Cvl.Engine.build_ctx frame
               {
                 Cvl.Manifest.entity = "fuzz";
                 enabled = true;
                 search_paths = [ "/etc" ];
                 cvl_file = "-";
                 lens = None;
                 rule_type = None;
                 flaky_plugins = [];
               }
           in
           match List.iter (fun rule -> ignore (Cvl.Engine.eval_rule ctx rule)) rules with
           | () -> true
           | exception e ->
             QCheck.Test.fail_reportf "engine leaked %s on:\n%s" (Printexc.to_string e) doc)))

let suite = parser_cases @ lens_cases @ registry_cases @ renderer_cases @ [ hostile_rules ]
