(* Direct tests of the InSpec-style embedded DSL (the "expected"
   declarative form of paper Listing 6) and of the OVAL criteria
   algebra. *)

let frame = Scenarios.Host.compliant ()
let bad_frame = Scenarios.Host.misconfigured ()

open Inspeclite

let listing6_control =
  (* The paper's expected encoding, almost verbatim. *)
  Dsl.control ~id:"sshd-06" ~impact:1.0
    ~title:"Server: Do not permit root-based login"
    [ Dsl.describe Dsl.sshd_config [ Dsl.its "PermitRootLogin" (Dsl.should_match "no|without-password") ] ]

let dsl_cases =
  [
    Alcotest.test_case "listing 6 expected control" `Quick (fun () ->
        Alcotest.(check bool) "good host passes" true (Dsl.run_control frame listing6_control);
        Alcotest.(check bool) "bad host fails" false (Dsl.run_control bad_frame listing6_control));
    Alcotest.test_case "resources fetch properties" `Quick (fun () ->
        Alcotest.(check (option string)) "sshd key" (Some "no")
          (Dsl.fetch frame Dsl.sshd_config "PermitRootLogin");
        Alcotest.(check (option string)) "sysctl key" (Some "0")
          (Dsl.fetch frame Dsl.sysctl_conf "net.ipv4.ip_forward");
        Alcotest.(check (option string)) "file mode" (Some "600")
          (Dsl.fetch frame (Dsl.File_resource "/etc/ssh/sshd_config") "mode");
        Alcotest.(check (option string)) "file exist" (Some "false")
          (Dsl.fetch frame (Dsl.File_resource "/nope") "exist");
        Alcotest.(check (option string)) "command stdout" (Some "hello")
          (Dsl.fetch frame (Dsl.Command "echo hello") "stdout");
        Alcotest.(check (option string)) "missing key" None
          (Dsl.fetch frame Dsl.sshd_config "NoSuchKeyword"));
    Alcotest.test_case "matchers" `Quick (fun () ->
        let check_matcher name matcher value expected =
          let ctrl =
            Dsl.control ~id:"m" [ Dsl.describe (Dsl.Command ("echo " ^ value)) [ Dsl.its "stdout" matcher ] ]
          in
          Alcotest.(check bool) name expected (Dsl.run_control frame ctrl)
        in
        check_matcher "eq hit" (Dsl.Eq "x") "x" true;
        check_matcher "eq miss" (Dsl.Eq "x") "y" false;
        check_matcher "be_in" (Dsl.Be_in [ "a"; "b" ]) "b" true;
        check_matcher "le" (Dsl.Le 4) "3" true;
        check_matcher "le miss" (Dsl.Le 4) "5" false;
        check_matcher "ge" (Dsl.Ge 2) "2" true;
        check_matcher "mode_max pass" (Dsl.Mode_max 0o644) "600" true;
        check_matcher "mode_max bitwise fail" (Dsl.Mode_max 0o644) "606" false;
        check_matcher "match unanchored" (Dsl.Match "v1\\.[23]") "TLSv1.2" true;
        check_matcher "exist" Dsl.Exist "whatever" true);
    Alcotest.test_case "negated expectations" `Quick (fun () ->
        let ctrl =
          Dsl.control ~id:"n"
            [ Dsl.describe Dsl.sshd_config [ Dsl.its "PermitRootLogin" ~negate:true (Dsl.Eq "yes") ] ]
        in
        Alcotest.(check bool) "good host" true (Dsl.run_control frame ctrl);
        Alcotest.(check bool) "bad host" false (Dsl.run_control bad_frame ctrl);
        (* Negation over a missing property passes (nothing equals yes). *)
        let ctrl_missing =
          Dsl.control ~id:"n2"
            [ Dsl.describe Dsl.sshd_config [ Dsl.its "NoSuchKeyword" ~negate:true (Dsl.Eq "yes") ] ]
        in
        Alcotest.(check bool) "missing negated" true (Dsl.run_control frame ctrl_missing));
    Alcotest.test_case "run_profile aggregates controls" `Quick (fun () ->
        let controls = List.map Engine.to_dsl Checkir.Cis40.all in
        let results = Dsl.run_profile bad_frame controls in
        Alcotest.(check int) "forty controls" 40 (List.length results);
        Alcotest.(check int) "fifteen failures" 15
          (List.length (List.filter (fun (_, ok) -> not ok) results)));
  ]

let oval_criteria_cases =
  let open Scap.Oval in
  let test_true = Text_content { test_id = "t"; filepath = "/etc/ssh/sshd_config"; pattern = "PermitRootLogin"; existence = At_least_one } in
  let test_false = Text_content { test_id = "f"; filepath = "/etc/ssh/sshd_config"; pattern = "zzz_nothing"; existence = At_least_one } in
  let doc criteria = { definitions = [ { def_id = "d"; title = ""; description = ""; criteria } ]; tests = [ test_true; test_false ] } in
  let eval criteria =
    let d = doc criteria in
    eval_definition d frame (List.hd d.definitions)
  in
  [
    Alcotest.test_case "criteria operators and negation" `Quick (fun () ->
        let t = Criterion { test_ref = "t"; negate = false } in
        let f = Criterion { test_ref = "f"; negate = false } in
        Alcotest.(check bool) "plain true" true (eval t);
        Alcotest.(check bool) "plain false" false (eval f);
        Alcotest.(check bool) "negate" true (eval (Criterion { test_ref = "f"; negate = true }));
        Alcotest.(check bool) "and" false (eval (Operator { op = `And; negate = false; children = [ t; f ] }));
        Alcotest.(check bool) "or" true (eval (Operator { op = `Or; negate = false; children = [ t; f ] }));
        Alcotest.(check bool) "negated and" true
          (eval (Operator { op = `And; negate = true; children = [ t; f ] }));
        Alcotest.(check bool) "missing test_ref is false" false
          (eval (Criterion { test_ref = "ghost"; negate = false })));
    Alcotest.test_case "none_exist semantics" `Quick (fun () ->
        let none =
          Text_content
            { test_id = "n"; filepath = "/etc/ssh/sshd_config"; pattern = "PermitRootLogin\\s+yes"; existence = None_exist }
        in
        let d = { definitions = [ { def_id = "d"; title = ""; description = ""; criteria = Criterion { test_ref = "n"; negate = false } } ]; tests = [ none ] } in
        Alcotest.(check bool) "good host: no root login line" true
          (eval_definition d frame (List.hd d.definitions));
        Alcotest.(check bool) "bad host: line present" false
          (eval_definition d bad_frame (List.hd d.definitions)));
    Alcotest.test_case "file_attrs test" `Quick (fun () ->
        let attrs =
          File_attrs { test_id = "a"; filepath = "/etc/ssh/sshd_config"; uid = 0; gid = 0; mode_max = 0o600 }
        in
        let d = { definitions = [ { def_id = "d"; title = ""; description = ""; criteria = Criterion { test_ref = "a"; negate = false } } ]; tests = [ attrs ] } in
        Alcotest.(check bool) "good host 600" true (eval_definition d frame (List.hd d.definitions));
        Alcotest.(check bool) "bad host 644" false
          (eval_definition d bad_frame (List.hd d.definitions)));
  ]

let suite = dsl_cases @ oval_criteria_cases
