open Configtree

let forest =
  [
    Tree.section "http"
      [
        Tree.leaf "server_tokens" "off";
        Tree.section "server"
          [ Tree.leaf "listen" "443 ssl"; Tree.leaf "listen" "80"; Tree.leaf "root" "/srv" ];
        Tree.section "server" [ Tree.leaf "listen" "8080" ];
      ];
    Tree.leaf "user" "www-data";
  ]

let find name path expected =
  Alcotest.test_case name `Quick (fun () ->
      Alcotest.(check (list string)) "values" expected (Path.find_values_str forest path))

let tree_cases =
  [
    find "root leaf" "user" [ "www-data" ];
    find "nested" "http/server_tokens" [ "off" ];
    find "repeated labels gather" "http/server/listen" [ "443 ssl"; "80"; "8080" ];
    find "indexed sibling" "http/server[2]/listen" [ "8080" ];
    find "index into repeats" "http/server[1]/listen[2]" [ "80" ];
    find "wildcard" "http/*/listen" [ "443 ssl"; "80"; "8080" ];
    find "deep wildcard" "**/listen" [ "443 ssl"; "80"; "8080" ];
    find "deep anchors anywhere" "**/root" [ "/srv" ];
    find "no match" "http/nothing" [];
    find "out of range index" "http/server[5]/listen" [];
    Alcotest.test_case "empty path returns roots" `Quick (fun () ->
        Alcotest.(check int) "roots" 2 (List.length (Path.find forest [])));
    Alcotest.test_case "parse errors" `Quick (fun () ->
        Alcotest.(check bool) "bad index" true (Result.is_error (Path.parse "a[0]"));
        Alcotest.(check bool) "empty segment" true (Result.is_error (Path.parse "a//b"));
        Alcotest.(check bool) "junk index" true (Result.is_error (Path.parse "a[x]")));
    Alcotest.test_case "path print/parse roundtrip" `Quick (fun () ->
        let p = Path.parse_exn "a/*/b[2]/**/c" in
        Alcotest.(check bool) "roundtrip" true (Path.parse_exn (Path.to_string p) = p));
    Alcotest.test_case "size and depth" `Quick (fun () ->
        Alcotest.(check int) "size" 9 (Tree.size forest);
        Alcotest.(check int) "depth" 3 (Tree.depth forest));
    Alcotest.test_case "flatten document order" `Quick (fun () ->
        let flat = Tree.flatten forest in
        Alcotest.(check (option string)) "first" (Some "http/server_tokens")
          (Option.map fst (List.nth_opt flat 0));
        Alcotest.(check int) "count" 6 (List.length flat));
    Alcotest.test_case "dotted labels are single segments" `Quick (fun () ->
        let f = [ Tree.leaf "net.ipv4.ip_forward" "0" ] in
        Alcotest.(check (list string)) "lookup" [ "0" ] (Path.find_values_str f "net.ipv4.ip_forward"));
  ]

let fstab_table =
  Table.make_exn ~name:"fstab"
    ~columns:[ "device"; "dir"; "fstype"; "options"; "dump"; "pass" ]
    [
      [ "/dev/sda1"; "/"; "ext4"; "errors=remount-ro"; "0"; "1" ];
      [ "/dev/sda2"; "/tmp"; "ext4"; "nodev,nosuid"; "0"; "2" ];
      [ "tmpfs"; "/run/shm"; "tmpfs"; "nodev" ];
    ]

let query_case name ~constraints ~values ~columns expected =
  Alcotest.test_case name `Quick (fun () ->
      match Table.parse_query ~constraints ~values with
      | Error e -> Alcotest.fail e
      | Ok q -> (
        let rows = Table.select fstab_table q in
        match Table.project fstab_table ~columns rows with
        | Ok projected -> Alcotest.(check (list (list string))) "rows" expected projected
        | Error e -> Alcotest.fail e))

let table_cases =
  [
    Alcotest.test_case "short rows padded" `Quick (fun () ->
        match Table.parse_query ~constraints:"dir = ?" ~values:[ "/run/shm" ] with
        | Ok q ->
          Alcotest.(check (list (list string))) "padded"
            [ [ "tmpfs"; "/run/shm"; "tmpfs"; "nodev"; ""; "" ] ]
            (Table.select fstab_table q)
        | Error e -> Alcotest.fail e);
    Alcotest.test_case "long rows rejected" `Quick (fun () ->
        Alcotest.(check bool) "error" true
          (Result.is_error (Table.make ~name:"x" ~columns:[ "a" ] [ [ "1"; "2" ] ])));
    query_case "paper listing 3 query" ~constraints:"dir = ?" ~values:[ "/tmp" ] ~columns:[ "*" ]
      [ [ "/dev/sda2"; "/tmp"; "ext4"; "nodev,nosuid"; "0"; "2" ] ];
    query_case "projection" ~constraints:"dir = ?" ~values:[ "/tmp" ] ~columns:[ "options" ]
      [ [ "nodev,nosuid" ] ];
    query_case "conjunction" ~constraints:"fstype = ? AND dir != ?" ~values:[ "ext4"; "/" ]
      ~columns:[ "dir" ]
      [ [ "/tmp" ] ];
    query_case "regex operator" ~constraints:"options ~ ?" ~values:[ ".*nosuid.*" ] ~columns:[ "dir" ]
      [ [ "/tmp" ] ];
    query_case "negated regex" ~constraints:"options !~ ?" ~values:[ ".*nodev.*" ] ~columns:[ "dir" ]
      [ [ "/" ] ];
    query_case "empty constraints select all" ~constraints:"" ~values:[] ~columns:[ "dir" ]
      [ [ "/" ]; [ "/tmp" ]; [ "/run/shm" ] ];
    Alcotest.test_case "placeholder arity mismatch" `Quick (fun () ->
        Alcotest.(check bool) "too few" true
          (Result.is_error (Table.parse_query ~constraints:"dir = ?" ~values:[]));
        Alcotest.(check bool) "too many" true
          (Result.is_error (Table.parse_query ~constraints:"dir = ?" ~values:[ "a"; "b" ])));
    Alcotest.test_case "unknown column projection" `Quick (fun () ->
        Alcotest.(check bool) "error" true
          (Result.is_error (Table.project fstab_table ~columns:[ "nope" ] [])));
    Alcotest.test_case "column_values" `Quick (fun () ->
        Alcotest.(check (list string)) "dirs" [ "/"; "/tmp"; "/run/shm" ]
          (Table.column_values fstab_table ~column:"dir"));
  ]

(* Property: [find] with a Deep prefix is a superset of plain find. *)
let label_gen = QCheck.Gen.(string_size ~gen:(char_range 'a' 'c') (int_range 1 2))

let tree_gen =
  let open QCheck.Gen in
  let rec node depth =
    let* label = label_gen in
    if depth = 0 then return (Tree.leaf label "v")
    else
      let* children = list_size (int_range 0 3) (node (depth - 1)) in
      let* has_value = bool in
      return (Tree.node ?value:(if has_value then Some "v" else None) ~children label)
  in
  list_size (int_range 0 4) (node 2)

let deep_superset_prop =
  QCheck.Test.make ~count:300 ~name:"deep search is a superset of rooted search"
    (QCheck.make
       ~print:(fun (forest, label) -> Printf.sprintf "%s @ %s" (Tree.to_string forest) label)
       QCheck.Gen.(pair tree_gen label_gen))
    (fun (forest, label) ->
      let rooted = Path.find forest [ Path.Label label ] in
      let deep = Path.find forest [ Path.Deep; Path.Label label ] in
      List.for_all (fun n -> List.memq n deep) rooted)

(* Wide fan-out: [**/leaf] over n sections visits every node once, and
   the result must contain each physical leaf exactly once in document
   order. The old O(n^2) structural dedup also collapsed distinct
   sibling leaves that happened to be structurally equal; the physical
   dedup must not. *)
let wide_fanout_cases =
  let n = 2000 in
  let wide =
    List.init n (fun i -> Tree.section (Printf.sprintf "s%04d" i) [ Tree.leaf "leaf" "same" ])
  in
  [
    Alcotest.test_case "wide fan-out deep search keeps equal siblings" `Quick (fun () ->
        let hits = Path.find wide (Path.parse_exn "**/leaf") in
        Alcotest.(check int) "one hit per section" n (List.length hits));
    Alcotest.test_case "dedup_phys drops only physical duplicates" `Quick (fun () ->
        let a = Tree.leaf "a" "v" and b = Tree.leaf "a" "v" in
        Alcotest.(check int) "structural twins survive" 2
          (List.length (Path.dedup_phys [ a; b ]));
        Alcotest.(check int) "physical repeats collapse" 2
          (List.length (Path.dedup_phys [ a; b; a; b; a ])));
    Alcotest.test_case "dedup_phys preserves first-occurrence order" `Quick (fun () ->
        let a = Tree.leaf "a" "1" and b = Tree.leaf "b" "2" and c = Tree.leaf "c" "3" in
        let out = Path.dedup_phys [ b; a; b; c; a ] in
        Alcotest.(check (list string)) "order"
          [ "b"; "a"; "c" ]
          (List.map (fun (n : Tree.t) -> n.Tree.label) out));
    Alcotest.test_case "indexed segment selects k-th same-label sibling" `Quick (fun () ->
        let many =
          List.init 500 (fun i -> Tree.leaf "item" (string_of_int i))
          @ [ Tree.leaf "other" "x" ]
        in
        Alcotest.(check (list string)) "first" [ "0" ] (Path.find_values_str many "item[1]");
        Alcotest.(check (list string)) "third" [ "2" ] (Path.find_values_str many "item[3]");
        Alcotest.(check (list string)) "past the end" [] (Path.find_values_str many "item[501]"));
  ]

(* The per-forest index answers exactly like Path.find — element-
   identical node lists — and is keyed on the forest's physical
   identity, so a re-parsed (mutated) forest gets a fresh index while
   the old forest keeps its old one. *)
let index_cases =
  let paths =
    [ "user"; "http/server_tokens"; "http/server/listen"; "http/server[2]/listen";
      "http/*/listen"; "**/listen"; "**/root"; "http/nothing"; "missing_label" ]
  in
  [
    Alcotest.test_case "index agrees with Path.find on every query" `Quick (fun () ->
        let idx = Index.create forest in
        List.iter
          (fun text ->
            let p = Path.parse_exn text in
            let direct = Path.find forest p and indexed = Index.find idx p in
            Alcotest.(check int) (text ^ " count") (List.length direct) (List.length indexed);
            List.iter2
              (fun a b -> Alcotest.(check bool) (text ^ " element-identical") true (a == b))
              direct indexed)
          paths);
    Alcotest.test_case "repeat queries hit the memo" `Quick (fun () ->
        let idx = Index.create forest in
        let p = Path.parse_exn "**/listen" in
        ignore (Index.find idx p);
        let _, misses_after_first = Index.stats idx in
        ignore (Index.find idx p);
        ignore (Index.find idx p);
        let hits, misses = Index.stats idx in
        Alcotest.(check int) "no new misses" misses_after_first misses;
        Alcotest.(check bool) "hits recorded" true (hits >= 2));
    Alcotest.test_case "for_forest is keyed on physical identity" `Quick (fun () ->
        let idx1 = Index.for_forest forest in
        let idx2 = Index.for_forest forest in
        Alcotest.(check bool) "same forest, same index" true (idx1 == idx2);
        (* a structurally equal but re-built forest — what a frame
           mutation produces via re-parse — gets a fresh index *)
        let rebuilt = List.map (fun (n : Tree.t) -> Tree.node ?value:n.Tree.value ~children:n.Tree.children n.Tree.label) forest in
        let idx3 = Index.for_forest rebuilt in
        Alcotest.(check bool) "new forest, new index" true (not (idx3 == idx1));
        Alcotest.(check (list string)) "old index still answers for old forest"
          [ "443 ssl"; "80"; "8080" ]
          (Index.find_values idx1 (Path.parse_exn "http/server/listen"));
        Alcotest.(check (list string)) "new index answers for new forest"
          [ "443 ssl"; "80"; "8080" ]
          (Index.find_values idx3 (Path.parse_exn "http/server/listen")));
    Alcotest.test_case "exists matches find" `Quick (fun () ->
        let idx = Index.create forest in
        Alcotest.(check bool) "present" true (Index.exists idx (Path.parse_exn "**/root"));
        Alcotest.(check bool) "absent" false (Index.exists idx (Path.parse_exn "http/nope")));
  ]

(* The fused query plan: N paths merged into one prefix trie, answered
   by a single shared walk. Each query's node list must be element-
   identical to Path.find, the walk must seed the per-path memo (so
   residual single-path finds after a plan run are cache hits), and a
   repeated run of the same plan must be answered from the plan memo. *)
let plan_cases =
  let plan_paths =
    [ "user"; "http/server_tokens"; "http/server/listen"; "http/server[2]/listen";
      "http/*/listen"; "**/listen"; "**/root"; "http/nothing"; "missing_label" ]
  in
  [
    Alcotest.test_case "plan run agrees with Path.find on every query" `Quick (fun () ->
        let paths = Array.of_list (List.map Path.parse_exn plan_paths) in
        let plan = Index.Plan.build paths in
        Alcotest.(check int) "size" (Array.length paths) (Index.Plan.size plan);
        let results = Index.run_plan (Index.create forest) plan in
        Array.iteri
          (fun i p ->
            let direct = Path.find forest p in
            let text = List.nth plan_paths i in
            Alcotest.(check int) (text ^ " count") (List.length direct)
              (List.length results.(i));
            List.iter2
              (fun a b -> Alcotest.(check bool) (text ^ " element-identical") true (a == b))
              direct results.(i))
          (Index.Plan.paths plan));
    Alcotest.test_case "repeated plan runs hit the plan memo" `Quick (fun () ->
        let plan = Index.Plan.build [| Path.parse_exn "**/listen" |] in
        let idx = Index.create forest in
        let r1 = Index.run_plan idx plan in
        let hits1, misses1 = Index.stats idx in
        let r2 = Index.run_plan idx plan in
        Alcotest.(check bool) "same array back" true (r1 == r2);
        let hits2, misses2 = Index.stats idx in
        Alcotest.(check int) "no new misses" misses1 misses2;
        Alcotest.(check int) "one more hit" (hits1 + 1) hits2);
    Alcotest.test_case "plan run seeds the per-path memo" `Quick (fun () ->
        (* satellite of the fused engine: residual per-rule Index.find
           calls after the shared walk must not re-walk the forest *)
        let p = Path.parse_exn "http/server/listen" in
        let plan = Index.Plan.build [| p |] in
        let idx = Index.create forest in
        let planned = Index.run_plan idx plan in
        let _, misses_after_plan = Index.stats idx in
        let found = Index.find idx p in
        let hits, misses = Index.stats idx in
        Alcotest.(check int) "find after plan adds no miss" misses_after_plan misses;
        Alcotest.(check bool) "find after plan is a hit" true (hits >= 1);
        Alcotest.(check bool) "memoized list is the plan's" true (found == planned.(0)));
    Alcotest.test_case "subsumptions are the proper-prefix pairs" `Quick (fun () ->
        let build texts =
          Index.Plan.build (Array.of_list (List.map Path.parse_exn texts))
        in
        let plan = build [ "http"; "http/server"; "http/server/listen"; "user" ] in
        Alcotest.(check (list (pair int int))) "chain"
          [ (0, 1); (0, 2); (1, 2) ]
          (Index.Plan.subsumptions plan);
        Alcotest.(check (list (pair int int))) "identical paths do not subsume" []
          (Index.Plan.subsumptions (build [ "a/b"; "a/b" ]));
        Alcotest.(check (list (pair int int))) "deep prefix subsumes" [ (0, 1) ]
          (Index.Plan.subsumptions (build [ "**/listen"; "**/listen/cert" ])));
  ]

(* Property: a plan over several shapes answers element-identically to
   Path.find per query, on random forests. *)
let plan_agrees_prop =
  QCheck.Test.make ~count:300 ~name:"Plan run agrees with Path.find"
    (QCheck.make
       ~print:(fun (forest, label) -> Printf.sprintf "%s @ %s" (Tree.to_string forest) label)
       QCheck.Gen.(pair tree_gen label_gen))
    (fun (forest, label) ->
      let shapes =
        [| [ Path.Label label ]; [ Path.Deep; Path.Label label ];
           [ Path.Wildcard; Path.Label label ]; [ Path.Label label; Path.Label label ];
           [ Path.Deep; Path.Label label; Path.Wildcard ];
           [ Path.Deep; Path.Label label; Path.Deep; Path.Label label ] |]
      in
      let results = Index.run_plan (Index.create forest) (Index.Plan.build shapes) in
      Array.for_all2
        (fun p planned ->
          let direct = Path.find forest p in
          List.length direct = List.length planned && List.for_all2 ( == ) direct planned)
        shapes results)

(* Property: the index agrees with Path.find on random forests and a
   few path shapes, including element identity. *)
let index_agrees_prop =
  QCheck.Test.make ~count:300 ~name:"Index.find agrees with Path.find"
    (QCheck.make
       ~print:(fun (forest, label) -> Printf.sprintf "%s @ %s" (Tree.to_string forest) label)
       QCheck.Gen.(pair tree_gen label_gen))
    (fun (forest, label) ->
      let idx = Index.create forest in
      let shapes =
        [ [ Path.Label label ]; [ Path.Deep; Path.Label label ];
          [ Path.Wildcard; Path.Label label ]; [ Path.Label label; Path.Label label ];
          [ Path.Deep; Path.Label label; Path.Wildcard ] ]
      in
      List.for_all
        (fun p ->
          let direct = Path.find forest p and indexed = Index.find idx p in
          List.length direct = List.length indexed && List.for_all2 ( == ) direct indexed)
        shapes)

let size_flatten_prop =
  QCheck.Test.make ~count:300 ~name:"flatten length is bounded by size"
    (QCheck.make ~print:Tree.to_string tree_gen)
    (fun forest -> List.length (Tree.flatten forest) <= Tree.size forest)

let suite =
  tree_cases @ table_cases @ wide_fanout_cases @ index_cases @ plan_cases
  @ [
      QCheck_alcotest.to_alcotest deep_superset_prop;
      QCheck_alcotest.to_alcotest size_flatten_prop;
      QCheck_alcotest.to_alcotest index_agrees_prop;
      QCheck_alcotest.to_alcotest plan_agrees_prop;
    ]
