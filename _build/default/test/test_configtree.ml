open Configtree

let forest =
  [
    Tree.section "http"
      [
        Tree.leaf "server_tokens" "off";
        Tree.section "server"
          [ Tree.leaf "listen" "443 ssl"; Tree.leaf "listen" "80"; Tree.leaf "root" "/srv" ];
        Tree.section "server" [ Tree.leaf "listen" "8080" ];
      ];
    Tree.leaf "user" "www-data";
  ]

let find name path expected =
  Alcotest.test_case name `Quick (fun () ->
      Alcotest.(check (list string)) "values" expected (Path.find_values_str forest path))

let tree_cases =
  [
    find "root leaf" "user" [ "www-data" ];
    find "nested" "http/server_tokens" [ "off" ];
    find "repeated labels gather" "http/server/listen" [ "443 ssl"; "80"; "8080" ];
    find "indexed sibling" "http/server[2]/listen" [ "8080" ];
    find "index into repeats" "http/server[1]/listen[2]" [ "80" ];
    find "wildcard" "http/*/listen" [ "443 ssl"; "80"; "8080" ];
    find "deep wildcard" "**/listen" [ "443 ssl"; "80"; "8080" ];
    find "deep anchors anywhere" "**/root" [ "/srv" ];
    find "no match" "http/nothing" [];
    find "out of range index" "http/server[5]/listen" [];
    Alcotest.test_case "empty path returns roots" `Quick (fun () ->
        Alcotest.(check int) "roots" 2 (List.length (Path.find forest [])));
    Alcotest.test_case "parse errors" `Quick (fun () ->
        Alcotest.(check bool) "bad index" true (Result.is_error (Path.parse "a[0]"));
        Alcotest.(check bool) "empty segment" true (Result.is_error (Path.parse "a//b"));
        Alcotest.(check bool) "junk index" true (Result.is_error (Path.parse "a[x]")));
    Alcotest.test_case "path print/parse roundtrip" `Quick (fun () ->
        let p = Path.parse_exn "a/*/b[2]/**/c" in
        Alcotest.(check bool) "roundtrip" true (Path.parse_exn (Path.to_string p) = p));
    Alcotest.test_case "size and depth" `Quick (fun () ->
        Alcotest.(check int) "size" 9 (Tree.size forest);
        Alcotest.(check int) "depth" 3 (Tree.depth forest));
    Alcotest.test_case "flatten document order" `Quick (fun () ->
        let flat = Tree.flatten forest in
        Alcotest.(check (option string)) "first" (Some "http/server_tokens")
          (Option.map fst (List.nth_opt flat 0));
        Alcotest.(check int) "count" 6 (List.length flat));
    Alcotest.test_case "dotted labels are single segments" `Quick (fun () ->
        let f = [ Tree.leaf "net.ipv4.ip_forward" "0" ] in
        Alcotest.(check (list string)) "lookup" [ "0" ] (Path.find_values_str f "net.ipv4.ip_forward"));
  ]

let fstab_table =
  Table.make_exn ~name:"fstab"
    ~columns:[ "device"; "dir"; "fstype"; "options"; "dump"; "pass" ]
    [
      [ "/dev/sda1"; "/"; "ext4"; "errors=remount-ro"; "0"; "1" ];
      [ "/dev/sda2"; "/tmp"; "ext4"; "nodev,nosuid"; "0"; "2" ];
      [ "tmpfs"; "/run/shm"; "tmpfs"; "nodev" ];
    ]

let query_case name ~constraints ~values ~columns expected =
  Alcotest.test_case name `Quick (fun () ->
      match Table.parse_query ~constraints ~values with
      | Error e -> Alcotest.fail e
      | Ok q -> (
        let rows = Table.select fstab_table q in
        match Table.project fstab_table ~columns rows with
        | Ok projected -> Alcotest.(check (list (list string))) "rows" expected projected
        | Error e -> Alcotest.fail e))

let table_cases =
  [
    Alcotest.test_case "short rows padded" `Quick (fun () ->
        match Table.parse_query ~constraints:"dir = ?" ~values:[ "/run/shm" ] with
        | Ok q ->
          Alcotest.(check (list (list string))) "padded"
            [ [ "tmpfs"; "/run/shm"; "tmpfs"; "nodev"; ""; "" ] ]
            (Table.select fstab_table q)
        | Error e -> Alcotest.fail e);
    Alcotest.test_case "long rows rejected" `Quick (fun () ->
        Alcotest.(check bool) "error" true
          (Result.is_error (Table.make ~name:"x" ~columns:[ "a" ] [ [ "1"; "2" ] ])));
    query_case "paper listing 3 query" ~constraints:"dir = ?" ~values:[ "/tmp" ] ~columns:[ "*" ]
      [ [ "/dev/sda2"; "/tmp"; "ext4"; "nodev,nosuid"; "0"; "2" ] ];
    query_case "projection" ~constraints:"dir = ?" ~values:[ "/tmp" ] ~columns:[ "options" ]
      [ [ "nodev,nosuid" ] ];
    query_case "conjunction" ~constraints:"fstype = ? AND dir != ?" ~values:[ "ext4"; "/" ]
      ~columns:[ "dir" ]
      [ [ "/tmp" ] ];
    query_case "regex operator" ~constraints:"options ~ ?" ~values:[ ".*nosuid.*" ] ~columns:[ "dir" ]
      [ [ "/tmp" ] ];
    query_case "negated regex" ~constraints:"options !~ ?" ~values:[ ".*nodev.*" ] ~columns:[ "dir" ]
      [ [ "/" ] ];
    query_case "empty constraints select all" ~constraints:"" ~values:[] ~columns:[ "dir" ]
      [ [ "/" ]; [ "/tmp" ]; [ "/run/shm" ] ];
    Alcotest.test_case "placeholder arity mismatch" `Quick (fun () ->
        Alcotest.(check bool) "too few" true
          (Result.is_error (Table.parse_query ~constraints:"dir = ?" ~values:[]));
        Alcotest.(check bool) "too many" true
          (Result.is_error (Table.parse_query ~constraints:"dir = ?" ~values:[ "a"; "b" ])));
    Alcotest.test_case "unknown column projection" `Quick (fun () ->
        Alcotest.(check bool) "error" true
          (Result.is_error (Table.project fstab_table ~columns:[ "nope" ] [])));
    Alcotest.test_case "column_values" `Quick (fun () ->
        Alcotest.(check (list string)) "dirs" [ "/"; "/tmp"; "/run/shm" ]
          (Table.column_values fstab_table ~column:"dir"));
  ]

(* Property: [find] with a Deep prefix is a superset of plain find. *)
let label_gen = QCheck.Gen.(string_size ~gen:(char_range 'a' 'c') (int_range 1 2))

let tree_gen =
  let open QCheck.Gen in
  let rec node depth =
    let* label = label_gen in
    if depth = 0 then return (Tree.leaf label "v")
    else
      let* children = list_size (int_range 0 3) (node (depth - 1)) in
      let* has_value = bool in
      return (Tree.node ?value:(if has_value then Some "v" else None) ~children label)
  in
  list_size (int_range 0 4) (node 2)

let deep_superset_prop =
  QCheck.Test.make ~count:300 ~name:"deep search is a superset of rooted search"
    (QCheck.make
       ~print:(fun (forest, label) -> Printf.sprintf "%s @ %s" (Tree.to_string forest) label)
       QCheck.Gen.(pair tree_gen label_gen))
    (fun (forest, label) ->
      let rooted = Path.find forest [ Path.Label label ] in
      let deep = Path.find forest [ Path.Deep; Path.Label label ] in
      List.for_all (fun n -> List.memq n deep) rooted)

let size_flatten_prop =
  QCheck.Test.make ~count:300 ~name:"flatten length is bounded by size"
    (QCheck.make ~print:Tree.to_string tree_gen)
    (fun forest -> List.length (Tree.flatten forest) <= Tree.size forest)

let suite =
  tree_cases @ table_cases
  @ [ QCheck_alcotest.to_alcotest deep_superset_prop; QCheck_alcotest.to_alcotest size_flatten_prop ]
