open Cvl

let load_one yaml =
  match Loader.parse_rules yaml with
  | Ok [ rule ] -> rule
  | Ok rules -> Alcotest.failf "expected one rule, got %d" (List.length rules)
  | Error e -> Alcotest.fail e

let rejects name yaml fragment =
  Alcotest.test_case name `Quick (fun () ->
      match Loader.parse_rules yaml with
      | Ok _ -> Alcotest.fail "expected a load error"
      | Error e ->
        if not (Re.execp (Re.compile (Re.str fragment)) e) then
          Alcotest.failf "error %S does not mention %S" e fragment)

let listing2 =
  {|
config_name: ssl_protocols
config_path: ["server", "http/server"]
config_description: "Enables the specified SSL protocols."
preferred_value: [ "TLSv1.2", "TLSv1.3" ]
non_preferred_value: [ "SSLv2", "SSLv3", "TLSv1", "TLSv1.1" ]
non_preferred_value_match: substr,any
preferred_value_match: substr,all
not_present_description: "ssl_protocols is not present."
not_matched_preferred_value_description: "Non-recommended TLS ver."
matched_description: "ssl_protocols key is set to TLS v1.2/1.3"
tags: ["#security", "#ssl", "#owasp"]
require_other_configs: [ listen, ssl_certificate, ssl_certificate_key ]
file_context: ["nginx.conf", "sites-enabled"]
|}

let listing3 =
  {|
config_schema_name: check_tmp_separate_partition
config_schema_description: "Check if /tmp is on a separate partition"
query_constraints: "dir = ?"
query_constraints_value: ["/tmp"]
query_columns: "*"
non_preferred_value: [""]
non_preferred_value_match: exact,all
not_matched_preferred_value_description: "/tmp not on sep. partition"
matched_description: "/tmp is on a separate partition"
tags: ["#cis", "#cisubuntu14.04_2.1"]
|}

let listing4 =
  {|
path_name: /etc/mysql/my.cnf
path_description: "Permissions and ownership for mysql config file"
ownership: "0:0"
permission: 644
tags: [ "#owasp" ]
|}

let listing1 =
  {|
composite_rule_name: "mysql ssl-ca path and sysctl and nginx SSL"
composite_rule_description: "Check if nginx is running with SSL, ip_forward is disabled, and mysql server ssl-ca has a cert"
composite_rule: mysql.ssl-ca.CONFIGPATH=[mysqld].VALUE == "/etc/mysql/cacert.pem" && !sysctl.net.ipv4.ip_forward && nginx.listen
tags: ["docker", "nginx", "sysctl"]
matched_description: "mysql server ssl-ca has a cert, ip_forward is disabled, and nginx has SSL enabled."
not_matched_preferred_value_description: "Either mysql server ssl-ca does not have a cert, or ip_forward is enabled, or nginx has SSL disabled."
|}

let paper_listing_cases =
  [
    Alcotest.test_case "listing 2: tree rule" `Quick (fun () ->
        match load_one listing2 with
        | Rule.Tree r ->
          Alcotest.(check (list string)) "paths" [ "server"; "http/server" ] r.Rule.config_paths;
          let p = Option.get r.Rule.preferred in
          Alcotest.(check string) "match" "substr,all" (Matcher.to_string p.Rule.match_spec);
          Alcotest.(check (list string)) "values" [ "TLSv1.2"; "TLSv1.3" ] p.Rule.values;
          Alcotest.(check (list string)) "requires" [ "listen"; "ssl_certificate"; "ssl_certificate_key" ]
            r.Rule.require_other_configs
        | _ -> Alcotest.fail "expected tree rule");
    Alcotest.test_case "listing 3: schema rule" `Quick (fun () ->
        match load_one listing3 with
        | Rule.Schema r ->
          Alcotest.(check string) "constraints" "dir = ?" r.Rule.query_constraints;
          Alcotest.(check (list string)) "binding" [ "/tmp" ] r.Rule.query_constraints_value;
          Alcotest.(check (list string)) "columns" [ "*" ] r.Rule.query_columns
        | _ -> Alcotest.fail "expected schema rule");
    Alcotest.test_case "listing 4: path rule" `Quick (fun () ->
        match load_one listing4 with
        | Rule.Path r ->
          Alcotest.(check string) "path" "/etc/mysql/my.cnf" r.Rule.path;
          Alcotest.(check (option string)) "ownership" (Some "0:0") r.Rule.ownership;
          Alcotest.(check (option int)) "permission" (Some 0o644) r.Rule.permission
        | _ -> Alcotest.fail "expected path rule");
    Alcotest.test_case "listing 1: composite rule" `Quick (fun () ->
        match load_one listing1 with
        | Rule.Composite r ->
          Alcotest.(check bool) "expression parses" true (Result.is_ok (Expr.parse r.Rule.expression))
        | _ -> Alcotest.fail "expected composite rule");
  ]

let validation_cases =
  [
    rejects "unknown keyword" "config_name: x\nconfg_path: [a]\n" "unknown keyword";
    rejects "keyword from wrong group" "path_name: /x\nquery_constraints: \"a = ?\"\n" "not valid in a path rule";
    rejects "no discriminator" "preferred_value: [x]\n" "no discriminator";
    rejects "two discriminators" "config_name: a\npath_name: /x\n" "mixes discriminator";
    rejects "match without values" "config_name: a\npreferred_value_match: exact,any\n" "without";
    rejects "bad match spec" "config_name: a\npreferred_value: [x]\npreferred_value_match: sorta\n" "match";
    rejects "bad permission" "path_name: /x\npermission: 99x\n" "octal";
    rejects "script without plugin" "script_name: s\nconfig_path: [k]\n" "script";
    rejects "composite with bad expression" "composite_rule_name: c\ncomposite_rule: \"&& nope\"\n" "expression";
    rejects "non-mapping rule" "- 42\n" "mapping";
  ]

let manifest_cases =
  [
    Alcotest.test_case "listing 5: manifest" `Quick (fun () ->
        let entries =
          Manifest.parse_exn
            "nginx:\n  enabled: True\n  config_search_paths:\n    - /etc/nginx\n  cvl_file: \"component_configs/nginx.yaml\"\n"
        in
        match entries with
        | [ e ] ->
          Alcotest.(check string) "entity" "nginx" e.Manifest.entity;
          Alcotest.(check bool) "enabled" true e.Manifest.enabled;
          Alcotest.(check (list string)) "paths" [ "/etc/nginx" ] e.Manifest.search_paths;
          Alcotest.(check string) "file" "component_configs/nginx.yaml" e.Manifest.cvl_file
        | _ -> Alcotest.fail "expected one entry");
    Alcotest.test_case "manifest rejects unknown keys" `Quick (fun () ->
        Alcotest.(check bool) "error" true
          (Result.is_error (Manifest.parse "x:\n  cvl_file: f\n  shenanigans: 1\n")));
    Alcotest.test_case "manifest requires cvl_file" `Quick (fun () ->
        Alcotest.(check bool) "error" true (Result.is_error (Manifest.parse "x:\n  enabled: True\n")));
    Alcotest.test_case "manifest print/parse roundtrip" `Quick (fun () ->
        let entries = Rulesets.manifest in
        let reparsed = Manifest.parse_exn (Manifest.to_string entries) in
        Alcotest.(check int) "count" (List.length entries) (List.length reparsed);
        List.iter2
          (fun (a : Manifest.entry) (b : Manifest.entry) ->
            Alcotest.(check string) "entity" a.Manifest.entity b.Manifest.entity;
            Alcotest.(check (list string)) "paths" a.Manifest.search_paths b.Manifest.search_paths)
          entries reparsed);
  ]

let parent = {|
rules:
  - config_name: Banner
    config_path: [""]
    preferred_value: ["/etc/issue.net"]
    matched_description: "parent banner"
  - config_name: Protocol
    config_path: [""]
    preferred_value: ["2"]
|}

let child = {|
parent_cvl_file: "parent.yaml"
rules:
  - config_name: Banner
    preferred_value: ["/etc/motd"]
  - config_name: Protocol
    disabled: true
  - config_name: LogLevel
    config_path: [""]
    preferred_value: ["INFO"]
|}

let inheritance_cases =
  [
    Alcotest.test_case "child overrides, disables, extends" `Quick (fun () ->
        let source = Loader.assoc_source [ ("parent.yaml", parent); ("child.yaml", child) ] in
        match Loader.load_file source "child.yaml" with
        | Error e -> Alcotest.fail e
        | Ok rules -> (
          Alcotest.(check (list string)) "names and order" [ "Banner"; "Protocol"; "LogLevel" ]
            (List.map Rule.name rules);
          (match List.nth rules 0 with
          | Rule.Tree r ->
            let p = Option.get r.Rule.preferred in
            Alcotest.(check (list string)) "overridden value" [ "/etc/motd" ] p.Rule.values;
            (* Unoverridden keys inherited from the parent. *)
            Alcotest.(check string) "kept description" "parent banner"
              r.Rule.tree_common.Rule.matched_description
          | _ -> Alcotest.fail "tree expected");
          Alcotest.(check bool) "disabled" true (Rule.is_disabled (List.nth rules 1))));
    Alcotest.test_case "inheritance cycles detected" `Quick (fun () ->
        let source =
          Loader.assoc_source
            [
              ("a.yaml", "parent_cvl_file: \"b.yaml\"\nrules: []\n");
              ("b.yaml", "parent_cvl_file: \"a.yaml\"\nrules: []\n");
            ]
        in
        match Loader.load_file source "a.yaml" with
        | Ok _ -> Alcotest.fail "expected cycle error"
        | Error e -> Alcotest.(check bool) "mentions cycle" true (Re.execp (Re.compile (Re.str "cycle")) e));
    Alcotest.test_case "missing parent reported" `Quick (fun () ->
        let source = Loader.assoc_source [ ("a.yaml", "parent_cvl_file: \"gone.yaml\"\nrules: []\n") ] in
        Alcotest.(check bool) "error" true (Result.is_error (Loader.load_file source "a.yaml")));
    Alcotest.test_case "parse_rules rejects parent references" `Quick (fun () ->
        Alcotest.(check bool) "error" true
          (Result.is_error (Loader.parse_rules "parent_cvl_file: \"x.yaml\"\nrules: []\n")));
    Alcotest.test_case "embedded site override behaves" `Quick (fun () ->
        match Loader.load_file Rulesets.source "site_overrides/sshd.yaml" with
        | Error e -> Alcotest.fail e
        | Ok rules ->
          Alcotest.(check int) "same count as parent" 14 (List.length rules);
          let protocol = List.find (fun r -> Rule.name r = "Protocol") rules in
          Alcotest.(check bool) "protocol disabled" true (Rule.is_disabled protocol);
          let banner = List.find (fun r -> Rule.name r = "Banner") rules in
          (match banner with
          | Rule.Tree r ->
            let p = Option.get r.Rule.preferred in
            Alcotest.(check bool) "motd allowed" true (List.mem "/etc/motd" p.Rule.values)
          | _ -> Alcotest.fail "tree expected"));
  ]

let shape_cases =
  [
    Alcotest.test_case "accepts a bare list of rules" `Quick (fun () ->
        match Loader.parse_rules "- config_name: a\n  preferred_value: [x]\n- path_name: /x\n" with
        | Ok rules -> Alcotest.(check int) "two" 2 (List.length rules)
        | Error e -> Alcotest.fail e);
    Alcotest.test_case "accepts ----separated documents" `Quick (fun () ->
        match Loader.parse_rules "config_name: a\npreferred_value: [x]\n---\npath_name: /y\n" with
        | Ok rules -> Alcotest.(check int) "two" 2 (List.length rules)
        | Error e -> Alcotest.fail e);
    Alcotest.test_case "empty file is no rules" `Quick (fun () ->
        match Loader.parse_rules "# nothing\n" with
        | Ok [] -> ()
        | Ok _ -> Alcotest.fail "expected none"
        | Error e -> Alcotest.fail e);
    Alcotest.test_case "rejects stray top-level keys" `Quick (fun () ->
        Alcotest.(check bool) "error" true
          (Result.is_error (Loader.parse_rules "rules: []\nextra: 1\n")));
  ]

let suite = paper_listing_cases @ validation_cases @ manifest_cases @ inheritance_cases @ shape_cases
