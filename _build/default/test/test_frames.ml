open Frames

let frame_with files =
  Frame.add_files (Frame.create ~id:"t" Frame.Host) files

let path_cases =
  [
    Alcotest.test_case "normalize_path" `Quick (fun () ->
        Alcotest.(check string) "dup slashes" "/a/b" (File.normalize_path "//a///b/");
        Alcotest.(check string) "dot segments" "/a/c" (File.normalize_path "/a/./b/../c");
        Alcotest.(check string) "escape above root" "/" (File.normalize_path "/../..");
        Alcotest.(check string) "root" "/" (File.normalize_path "/"));
    Alcotest.test_case "parent and basename" `Quick (fun () ->
        Alcotest.(check string) "parent" "/a" (File.parent "/a/b");
        Alcotest.(check string) "parent of top" "/" (File.parent "/a");
        Alcotest.(check string) "basename" "b" (File.basename "/a/b"));
    Alcotest.test_case "mode rendering" `Quick (fun () ->
        let f = File.make ~mode:0o644 ~content:"" "/etc/x" in
        Alcotest.(check string) "ls style" "-rw-r--r--" (File.mode_string f);
        Alcotest.(check string) "octal" "644" (File.permission_octal f);
        Alcotest.(check string) "ownership" "0:0" (File.ownership f);
        let d = File.directory ~mode:0o750 "/etc/d" in
        Alcotest.(check string) "dir" "drwxr-x---" (File.mode_string d));
  ]

let frame_cases =
  [
    Alcotest.test_case "add_file creates parents" `Quick (fun () ->
        let fr = frame_with [ File.make ~content:"x" "/etc/ssh/sshd_config" ] in
        Alcotest.(check bool) "dir exists" true (Frame.exists fr "/etc/ssh");
        Alcotest.(check bool) "root exists" true (Frame.exists fr "/");
        Alcotest.(check (option string)) "read" (Some "x") (Frame.read fr "/etc/ssh/sshd_config"));
    Alcotest.test_case "read of directory is None" `Quick (fun () ->
        let fr = frame_with [ File.directory "/etc" ] in
        Alcotest.(check (option string)) "dir read" None (Frame.read fr "/etc"));
    Alcotest.test_case "symlink resolution" `Quick (fun () ->
        let fr =
          frame_with
            [ File.make ~content:"real" "/etc/real.conf"; File.symlink ~target:"/etc/real.conf" "/etc/link.conf" ]
        in
        Alcotest.(check (option string)) "through link" (Some "real") (Frame.read fr "/etc/link.conf"));
    Alcotest.test_case "relative symlink" `Quick (fun () ->
        let fr =
          frame_with [ File.make ~content:"real" "/etc/real.conf"; File.symlink ~target:"real.conf" "/etc/l" ]
        in
        Alcotest.(check (option string)) "relative" (Some "real") (Frame.read fr "/etc/l"));
    Alcotest.test_case "symlink loops terminate" `Quick (fun () ->
        let fr = frame_with [ File.symlink ~target:"/b" "/a"; File.symlink ~target:"/a" "/b" ] in
        Alcotest.(check (option string)) "loop" None (Frame.read fr "/a"));
    Alcotest.test_case "files_under respects boundaries" `Quick (fun () ->
        let fr =
          frame_with
            [
              File.make ~content:"1" "/etc/nginx/nginx.conf";
              File.make ~content:"2" "/etc/nginx/conf.d/a.conf";
              File.make ~content:"3" "/etc/nginx-extras/x";
            ]
        in
        Alcotest.(check int) "under /etc/nginx" 2
          (List.length (Frame.files_under fr ~prefix:"/etc/nginx")));
    Alcotest.test_case "list_dir direct children only" `Quick (fun () ->
        let fr =
          frame_with [ File.make ~content:"" "/etc/a"; File.make ~content:"" "/etc/sub/b" ]
        in
        Alcotest.(check int) "children" 2 (List.length (Frame.list_dir fr "/etc")));
    Alcotest.test_case "remove_file" `Quick (fun () ->
        let fr = frame_with [ File.make ~content:"x" "/etc/a" ] in
        let fr = Frame.remove_file fr "/etc/a" in
        Alcotest.(check bool) "gone" false (Frame.exists fr "/etc/a"));
    Alcotest.test_case "mutators" `Quick (fun () ->
        let fr = frame_with [ File.make ~content:"a\n" "/etc/x" ] in
        let fr = Frame.set_content fr ~path:"/etc/x" "b\n" in
        let fr = Frame.chmod fr ~path:"/etc/x" 0o600 in
        let fr = Frame.chown fr ~path:"/etc/x" ~uid:7 ~gid:8 in
        let fr = Frame.append_line fr ~path:"/etc/x" "c" in
        let f = Option.get (Frame.stat fr "/etc/x") in
        Alcotest.(check string) "content" "b\nc\n" f.File.content;
        Alcotest.(check int) "mode" 0o600 f.File.mode;
        Alcotest.(check string) "owner" "7:8" (File.ownership f));
    Alcotest.test_case "kernel params" `Quick (fun () ->
        let fr = Frame.create ~id:"k" Frame.Host in
        let fr = Frame.set_kernel_param fr "a.b" "1" in
        let fr = Frame.set_kernel_param fr "a.b" "2" in
        Alcotest.(check (option string)) "last wins" (Some "2") (Frame.kernel_param fr "a.b");
        Alcotest.(check int) "no dup" 1 (List.length (Frame.kernel_params fr)));
    Alcotest.test_case "runtime docs and packages" `Quick (fun () ->
        let fr = Frame.create ~id:"k" Frame.Host in
        let fr = Frame.set_runtime_doc fr ~key:"k" "v1" in
        let fr = Frame.set_runtime_doc fr ~key:"k" "v2" in
        Alcotest.(check (option string)) "replaced" (Some "v2") (Frame.runtime_doc fr "k");
        let fr = Frame.set_packages fr [ { Frame.name = "nginx"; version = "1.13" } ] in
        Alcotest.(check (option string)) "pkg" (Some "1.13") (Frame.package_version fr "nginx"));
  ]

(* Properties over random file sets. *)
let path_gen =
  QCheck.Gen.(
    let seg = string_size ~gen:(char_range 'a' 'd') (int_range 1 3) in
    let* segs = list_size (int_range 1 4) seg in
    return ("/" ^ String.concat "/" segs))

let add_read_prop =
  QCheck.Test.make ~count:300 ~name:"stat finds every added file"
    (QCheck.make ~print:(String.concat ",") (QCheck.Gen.list_size (QCheck.Gen.int_range 0 10) path_gen))
    (fun paths ->
      (* Adding /a then /a/b turns /a into a file then implicitly needs
         it as a directory; keep only prefix-free path sets. *)
      let prefix_free =
        List.filter
          (fun p ->
            not
              (List.exists
                 (fun q -> p <> q && String.length q > String.length p
                           && String.sub q 0 (String.length p + 1) = p ^ "/")
                 paths))
          paths
      in
      let frame =
        List.fold_left
          (fun fr p -> Frames.Frame.add_file fr (File.make ~content:p p))
          (Frame.create ~id:"p" Frame.Host)
          prefix_free
      in
      List.for_all (fun p -> Frame.read frame p = Some p) prefix_free)

let normalize_idempotent_prop =
  QCheck.Test.make ~count:300 ~name:"normalize_path is idempotent"
    (QCheck.make ~print:(fun s -> s)
       QCheck.Gen.(string_size ~gen:(oneof [ char_range 'a' 'c'; return '/'; return '.' ]) (int_range 0 12)))
    (fun p ->
      let once = File.normalize_path p in
      File.normalize_path once = once)

let suite =
  path_cases @ frame_cases
  @ [ QCheck_alcotest.to_alcotest add_read_prop; QCheck_alcotest.to_alcotest normalize_idempotent_prop ]
