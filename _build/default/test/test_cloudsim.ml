open Cloudsim

let secgroup_cases =
  [
    Alcotest.test_case "world-open detection" `Quick (fun () ->
        let g =
          Secgroup.make ~name:"web"
            [
              Secgroup.ingress ~port:443 ();
              Secgroup.ingress ~cidr:"10.0.0.0/8" ~port:22 ();
              Secgroup.ingress_range 3300 3310;
            ]
        in
        Alcotest.(check int) "443 open" 1 (List.length (Secgroup.world_open_on g ~port:443));
        Alcotest.(check int) "22 closed" 0 (List.length (Secgroup.world_open_on g ~port:22));
        Alcotest.(check int) "3306 in range" 1 (List.length (Secgroup.world_open_on g ~port:3306));
        Alcotest.(check int) "3311 outside" 0 (List.length (Secgroup.world_open_on g ~port:3311)));
    Alcotest.test_case "ipv6 world cidr" `Quick (fun () ->
        let r = Secgroup.ingress ~cidr:"::/0" ~port:22 () in
        Alcotest.(check bool) "open" true (Secgroup.rule_world_open r));
    Alcotest.test_case "secgroup json shape" `Quick (fun () ->
        let g = Secgroup.make ~name:"db" [ Secgroup.ingress ~cidr:"10.0.1.0/24" ~port:3306 () ] in
        let json = Secgroup.to_json g in
        Alcotest.(check (option string)) "name" (Some "db")
          (Option.bind (Jsonlite.member "name" json) Jsonlite.get_str);
        match Jsonlite.member "security_group_rules" json with
        | Some (Jsonlite.Arr [ r ]) ->
          Alcotest.(check (option string)) "cidr" (Some "10.0.1.0/24")
            (Option.bind (Jsonlite.member "remote_ip_prefix" r) Jsonlite.get_str)
        | _ -> Alcotest.fail "rules shape");
  ]

let deployment_cases =
  [
    Alcotest.test_case "frame carries service configs" `Quick (fun () ->
        let frame = Scenarios.Cloud.compliant_frame () in
        Alcotest.(check bool) "keystone.conf" true (Frames.Frame.exists frame "/etc/keystone/keystone.conf");
        Alcotest.(check bool) "nova.conf" true (Frames.Frame.exists frame "/etc/nova/nova.conf");
        match Frames.Frame.kind frame with
        | Frames.Frame.Cloud _ -> ()
        | _ -> Alcotest.fail "kind");
    Alcotest.test_case "frame exposes API documents" `Quick (fun () ->
        let frame = Scenarios.Cloud.misconfigured_frame () in
        let doc key = Option.get (Frames.Frame.runtime_doc frame key) in
        let secgroups = Jsonlite.parse_exn (doc "openstack_secgroups") in
        Alcotest.(check bool) "groups is array" true (Jsonlite.get_arr secgroups <> None);
        let users = Jsonlite.parse_exn (doc "openstack_users") in
        Alcotest.(check bool) "users is array" true (Jsonlite.get_arr users <> None);
        let servers = Jsonlite.parse_exn (doc "openstack_servers") in
        Alcotest.(check int) "two instances" 2
          (List.length (Option.get (Jsonlite.get_arr servers))));
    Alcotest.test_case "exposures plugin derives facts" `Quick (fun () ->
        let bad = Scenarios.Cloud.misconfigured_frame () in
        (match Crawler.run_plugin bad ~name:"openstack_exposures" with
        | Ok out ->
          Alcotest.(check bool) "ssh open" true (Re.execp (Re.compile (Re.str "world_open_ssh=yes")) out);
          Alcotest.(check bool) "db open" true (Re.execp (Re.compile (Re.str "world_open_db=yes")) out);
          Alcotest.(check bool) "mfa" true (Re.execp (Re.compile (Re.str "admins_without_mfa=1")) out)
        | Error e -> Alcotest.fail e);
        let good = Scenarios.Cloud.compliant_frame () in
        match Crawler.run_plugin good ~name:"openstack_exposures" with
        | Ok out ->
          Alcotest.(check bool) "ssh closed" true (Re.execp (Re.compile (Re.str "world_open_ssh=no")) out);
          Alcotest.(check bool) "mfa ok" true (Re.execp (Re.compile (Re.str "admins_without_mfa=0")) out)
        | Error e -> Alcotest.fail e);
  ]

let suite = secgroup_cases @ deployment_cases
