(* The [validated] daemon: protocol codec/framing round-trips, the
   differential identity of streamed verdicts against the one-shot
   engine (all three engines, several job counts, chaos on and off),
   per-connection failure containment, baseline retention across
   reload, and watch mode over an injected transport. *)

open Daemon

let source = Rulesets.source
let manifest = Rulesets.manifest
let make_server ?(jobs = 1) () = Result.get_ok (Server.create ~jobs ~source ~manifest ())

let fleet () =
  [
    Scenarios.Host.compliant ();
    Scenarios.Host.misconfigured ();
    Scenarios.Webstack.nginx_container_frame ~compliant:false;
    Scenarios.Webstack.mysql_container_frame ~compliant:true;
  ]

let verdict_sig (v : Protocol.verdict) =
  (v.Protocol.v_entity, v.Protocol.v_frame, v.Protocol.v_rule, v.Protocol.v_verdict,
   v.Protocol.v_detail, String.concat "\x00" v.Protocol.v_evidence)

let result_sig (r : Cvl.Engine.result) =
  ( r.Cvl.Engine.entity,
    r.Cvl.Engine.frame_id,
    Cvl.Rule.name r.Cvl.Engine.rule,
    Cvl.Engine.verdict_to_string r.Cvl.Engine.verdict,
    r.Cvl.Engine.detail,
    String.concat "\x00" r.Cvl.Engine.evidence )

let sig_t = Alcotest.(list (pair (pair string string) (pair (pair string string) (pair string string))))
let nest (a, b, c, d, e, f) = ((a, b), ((c, d), (e, f)))

(* ---------------------------------------------------------------- *)
(* Protocol                                                          *)
(* ---------------------------------------------------------------- *)

let check_request_roundtrip r =
  let json = Protocol.request_to_json r in
  match Protocol.request_of_json json with
  | Error m -> Alcotest.failf "request did not decode: %s" m
  | Ok r' ->
      Alcotest.(check string)
        "request JSON round-trip" (Jsonlite.to_string json)
        (Jsonlite.to_string (Protocol.request_to_json r'))

let check_response_roundtrip r =
  let json = Protocol.response_to_json r in
  match Protocol.response_of_json json with
  | Error m -> Alcotest.failf "response did not decode: %s" m
  | Ok r' ->
      Alcotest.(check string)
        "response JSON round-trip" (Jsonlite.to_string json)
        (Jsonlite.to_string (Protocol.response_to_json r'))

(* Feed raw bytes to the framed reader. *)
let with_bytes bytes f =
  let path = Filename.temp_file "daemon" ".bin" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      Out_channel.with_open_bin path (fun oc -> Out_channel.output_string oc bytes);
      In_channel.with_open_bin path f)

let read_kind ic =
  match Protocol.read_message ic with
  | Protocol.Msg _ -> "msg"
  | Protocol.Bad_payload _ -> "bad-payload"
  | Protocol.Truncated _ -> "truncated"
  | Protocol.Closed -> "closed"

(* List elements evaluate right-to-left: force the reads in order. *)
let read_kinds ic n =
  let rec go n acc = if n = 0 then List.rev acc else go (n - 1) (read_kind ic :: acc) in
  go n []

let protocol_cases =
  [
    Alcotest.test_case "requests round-trip through JSON" `Quick (fun () ->
        let f = Scenarios.Host.compliant () in
        List.iter check_request_roundtrip
          [
            Protocol.Ping;
            Protocol.Validate (Protocol.job ());
            Protocol.Validate
              (Protocol.job ~frames:[ f ] ~frame_files:[ "a.json"; "b.json" ]
                 ~tags:[ "#security" ] ~entities:[ "sshd"; "sysctl" ] ~engine:`Compiled
                 ~jobs:4 ~keep_not_applicable:false ~chaos:7 ());
            Protocol.Revalidate { frame = Some f; frame_file = None };
            Protocol.Revalidate { frame = None; frame_file = Some "f.json" };
            Protocol.Reload_rules;
            Protocol.Stats;
            Protocol.Shutdown;
          ]);
    Alcotest.test_case "responses round-trip through JSON" `Quick (fun () ->
        List.iter check_response_roundtrip
          [
            Protocol.Pong;
            Protocol.Verdict
              {
                Protocol.v_entity = "sshd";
                v_frame = "host-1";
                v_rule = "PermitRootLogin";
                v_verdict = "not-matched";
                v_detail = "expected no, got yes";
                v_evidence = [ "/etc/ssh/sshd_config:12" ];
              };
            Protocol.Summary
              {
                Protocol.s_total = 170;
                s_matched = 140;
                s_violations = 25;
                s_not_present = 3;
                s_not_applicable = 2;
                s_errors = 0;
                s_degraded = false;
                s_engine = `Fused;
                s_job_ms = 12.5;
                s_cache_hits = 6;
                s_cache_misses = 0;
                s_revalidated = Some [ "sshd" ];
              };
            Protocol.Stats_reply
              {
                Protocol.st_requests = 5;
                st_jobs = 3;
                st_verdicts = 510;
                st_protocol_errors = 1;
                st_contained = 0;
                st_reloads = 1;
                st_entities = 15;
                st_rules = 170;
                st_retained_frames = 1;
                st_p50_ms = 1.0;
                st_p99_ms = 2.0;
                st_mean_ms = 1.2;
                st_verdicts_per_sec = 40000.0;
              };
            Protocol.Reloaded { entities = 15; rules = 170 };
            Protocol.Error_reply "boom";
            Protocol.Bye;
          ]);
    Alcotest.test_case "framing reads messages then a clean EOF" `Quick (fun () ->
        let buf = Buffer.create 64 in
        let oc_path = Filename.temp_file "daemon" ".bin" in
        Out_channel.with_open_bin oc_path (fun oc ->
            Protocol.write_message oc (Jsonlite.Str "one");
            Protocol.write_message oc (Jsonlite.Num 2.0));
        Buffer.add_string buf (In_channel.with_open_bin oc_path In_channel.input_all);
        Sys.remove oc_path;
        with_bytes (Buffer.contents buf) (fun ic ->
            Alcotest.(check (list string))
              "two messages then closed" [ "msg"; "msg"; "closed" ] (read_kinds ic 3)));
    Alcotest.test_case "framing: errors are classified" `Quick (fun () ->
        let kind bytes = with_bytes bytes read_kind in
        (* Non-numeric length line: nobody knows where the next message
           starts. *)
        Alcotest.(check string) "garbage length" "truncated" (kind "xyz\n{}\n");
        Alcotest.(check string) "negative length" "truncated" (kind "-4\n{}\n");
        (* EOF in the middle of a declared payload. *)
        Alcotest.(check string) "short payload" "truncated" (kind "100\n{\"op\":");
        (* Payload not followed by the frame-terminating newline. *)
        Alcotest.(check string) "missing terminator" "truncated" (kind "2\n{}X");
        (* Framed correctly but not JSON: stream still synchronized. *)
        Alcotest.(check string) "non-JSON payload" "bad-payload" (kind "9\nnot json!\n");
        (* And the reader really is still synchronized after one. *)
        with_bytes "9\nnot json!\n4\ntrue\n" (fun ic ->
            Alcotest.(check (list string))
              "bad payload, then a good message" [ "bad-payload"; "msg"; "closed" ]
              (read_kinds ic 3)));
  ]

(* ---------------------------------------------------------------- *)
(* Differential: daemon stream vs one-shot engine                    *)
(* ---------------------------------------------------------------- *)

let one_shot_signature ~rules ~chaos frames =
  let plan = Option.map (fun seed -> Faultsim.sample ~seed ~rules frames) chaos in
  Option.iter Faultsim.arm plan;
  Fun.protect
    ~finally:(fun () -> if plan <> None then Faultsim.disarm ())
    (fun () ->
      let t = Cvl.Validator.run_loaded ~rules frames in
      List.map result_sig t.Cvl.Validator.results)

let differential_cases =
  [
    Alcotest.test_case "streamed verdicts byte-identical to one-shot runs" `Slow (fun () ->
        let frames = fleet () in
        let rules =
          Result.get_ok (Cvl.Validator.load_rules ~source ~manifest)
        in
        let server = make_server () in
        let client = Client.in_process server in
        Fun.protect
          ~finally:(fun () ->
            Client.close client;
            Server.destroy server)
          (fun () ->
            List.iter
              (fun ((engine : Protocol.engine), jobs, chaos) ->
                let reference = one_shot_signature ~rules ~chaos frames in
                let streamed = ref [] in
                let summary =
                  Client.validate client
                    ~on_verdict:(fun v -> streamed := verdict_sig v :: !streamed)
                    (Protocol.job ~frames ~engine ~jobs ?chaos ())
                in
                let label =
                  Printf.sprintf "%s, jobs=%d, chaos=%s"
                    (Protocol.engine_to_string engine)
                    jobs
                    (match chaos with None -> "off" | Some s -> string_of_int s)
                in
                match summary with
                | Error m -> Alcotest.failf "%s: stream failed: %s" label m
                | Ok s ->
                    Alcotest.(check sig_t)
                      (label ^ ": same verdicts, same order")
                      (List.map nest reference)
                      (List.map nest (List.rev !streamed));
                    Alcotest.(check int)
                      (label ^ ": summary counts the stream")
                      (List.length reference) s.Protocol.s_total;
                    Alcotest.(check bool)
                      (label ^ ": chaos degrades, clean runs do not")
                      (chaos <> None) s.Protocol.s_degraded)
              [
                (`Fused, 1, None);
                (`Fused, 4, None);
                (`Fused, 1, Some 1);
                (`Compiled, 1, None);
                (`Compiled, 4, Some 1);
                (`Interpreted, 1, None);
                (`Interpreted, 4, Some 1);
              ]));
  ]

(* ---------------------------------------------------------------- *)
(* Containment: malformed and truncated peers                        *)
(* ---------------------------------------------------------------- *)

(* Serve one raw connection: [f] talks bytes to the server, returns
   with the connection outcome once the peer side is closed. *)
let raw_connection server f =
  let client_fd, server_fd = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  let domain =
    Domain.spawn (fun () ->
        let ic = Unix.in_channel_of_descr server_fd in
        let oc = Unix.out_channel_of_descr server_fd in
        let outcome = Server.serve server ic oc in
        close_out_noerr oc;
        close_in_noerr ic;
        outcome)
  in
  let ic = Unix.in_channel_of_descr client_fd in
  let oc = Unix.out_channel_of_descr client_fd in
  let result = f ic oc in
  close_out_noerr oc;
  close_in_noerr ic;
  (result, Domain.join domain)

let expect_pong ic =
  match Protocol.read_response ic with
  | Ok Protocol.Pong -> ()
  | Ok _ -> Alcotest.fail "expected pong"
  | Error m -> Alcotest.failf "expected pong, got error: %s" m

let expect_error ic =
  match Protocol.read_response ic with
  | Ok (Protocol.Error_reply m) -> m
  | Ok _ -> Alcotest.fail "expected an error reply"
  | Error m -> Alcotest.failf "transport error instead of error reply: %s" m

let containment_cases =
  [
    Alcotest.test_case "malformed payload answered, connection continues" `Quick (fun () ->
        let server = make_server () in
        Fun.protect
          ~finally:(fun () -> Server.destroy server)
          (fun () ->
            let (), outcome =
              raw_connection server (fun ic oc ->
                  Protocol.write_request oc Protocol.Ping;
                  expect_pong ic;
                  (* Well-framed garbage: the stream stays synchronized,
                     so the server answers and keeps this connection. *)
                  output_string oc "9\nnot json!\n";
                  flush oc;
                  let m = expect_error ic in
                  Alcotest.(check bool) "error names the malformed request" true
                    (String.length m > 0);
                  Protocol.write_request oc Protocol.Ping;
                  expect_pong ic)
            in
            Alcotest.(check bool) "clean disconnect" true (outcome = `Disconnect)));
    Alcotest.test_case "truncated stream drops only that connection" `Quick (fun () ->
        let server = make_server () in
        Fun.protect
          ~finally:(fun () -> Server.destroy server)
          (fun () ->
            let (), outcome =
              raw_connection server (fun ic oc ->
                  Protocol.write_request oc Protocol.Ping;
                  expect_pong ic;
                  (* Declare 999 bytes, send 6, then half-close: the
                     server sees EOF mid-payload — desynchronized. *)
                  output_string oc "999\n{\"op\":";
                  flush oc;
                  (try Unix.shutdown (Unix.descr_of_out_channel oc) Unix.SHUTDOWN_SEND
                   with Unix.Unix_error _ -> ());
                  let (_ : string) = expect_error ic in
                  ())
            in
            Alcotest.(check bool) "connection dropped" true (outcome = `Disconnect);
            (* The server value survives: the next connection serves. *)
            let (), outcome =
              raw_connection server (fun ic oc ->
                  Protocol.write_request oc Protocol.Ping;
                  expect_pong ic)
            in
            Alcotest.(check bool) "server alive for the next peer" true
              (outcome = `Disconnect)));
    Alcotest.test_case "a failing job is contained, the server keeps serving" `Quick (fun () ->
        let server = make_server () in
        let client = Client.in_process server in
        Fun.protect
          ~finally:(fun () ->
            Client.close client;
            Server.destroy server)
          (fun () ->
            (* Unreadable frame file. *)
            (match
               Client.validate client ~on_verdict:ignore
                 (Protocol.job ~frame_files:[ "/no/such/frame.json" ] ())
             with
            | Error _ -> ()
            | Ok _ -> Alcotest.fail "expected an error for an unreadable frame file");
            (* Unknown entity filter. *)
            (match
               Client.validate client ~on_verdict:ignore
                 (Protocol.job ~frames:[ Scenarios.Host.compliant () ]
                    ~entities:[ "no-such-entity" ] ())
             with
            | Error m ->
                Alcotest.(check bool) "error names the entity" true
                  (String.length m > 0)
            | Ok _ -> Alcotest.fail "expected an error for an unknown entity");
            (* No frames at all. *)
            (match Client.validate client ~on_verdict:ignore (Protocol.job ()) with
            | Error _ -> ()
            | Ok _ -> Alcotest.fail "expected an error for an empty job");
            Alcotest.(check (result unit string)) "still serving" (Ok ())
              (Client.ping client);
            match Client.stats client with
            | Error m -> Alcotest.failf "stats: %s" m
            | Ok st ->
                Alcotest.(check int) "every failure contained" 3
                  st.Protocol.st_contained;
                Alcotest.(check int) "no protocol errors" 0
                  st.Protocol.st_protocol_errors));
  ]

(* ---------------------------------------------------------------- *)
(* Retained baselines, reload, watch                                 *)
(* ---------------------------------------------------------------- *)

let broken_host () =
  let f = Scenarios.Host.compliant () in
  Frames.Frame.set_content f ~path:"/etc/ssh/sshd_config"
    (Scenarios.Host.good_sshd_config ^ "PermitRootLogin yes\n")

let lifecycle_cases =
  [
    Alcotest.test_case "revalidate needs a baseline; reload drops them all" `Quick (fun () ->
        let f = Scenarios.Host.compliant () in
        let f' = broken_host () in
        let server = make_server () in
        let client = Client.in_process server in
        Fun.protect
          ~finally:(fun () ->
            Client.close client;
            Server.destroy server)
          (fun () ->
            (* No baseline yet. *)
            (match Client.revalidate client ~on_verdict:ignore f' with
            | Error m ->
                Alcotest.(check bool) "asks for a validate first" true
                  (String.length m > 0)
            | Ok _ -> Alcotest.fail "revalidate without a baseline must fail");
            (* Validate (alone) retains the baseline... *)
            let s =
              Result.get_ok
                (Client.validate client ~on_verdict:ignore (Protocol.job ~frames:[ f ] ()))
            in
            Alcotest.(check bool) "clean run" false s.Protocol.s_degraded;
            let st = Result.get_ok (Client.stats client) in
            Alcotest.(check int) "one baseline retained" 1 st.Protocol.st_retained_frames;
            (* ...so revalidate works and re-evaluates only sshd. *)
            let s' = Result.get_ok (Client.revalidate client ~on_verdict:ignore f') in
            Alcotest.(check (option (list string)))
              "only sshd re-evaluated" (Some [ "sshd" ]) s'.Protocol.s_revalidated;
            Alcotest.(check bool) "the regression is visible" true
              (s'.Protocol.s_violations > s.Protocol.s_violations);
            (* Rule reload invalidates every retained baseline: the old
               results were produced by the old ruleset. *)
            let entities, rules = Result.get_ok (Client.reload_rules client) in
            Alcotest.(check bool) "reload reports the corpus" true (entities > 0 && rules > 0);
            let st = Result.get_ok (Client.stats client) in
            Alcotest.(check int) "baselines dropped" 0 st.Protocol.st_retained_frames;
            Alcotest.(check int) "reload counted" 1 st.Protocol.st_reloads;
            (match Client.revalidate client ~on_verdict:ignore f' with
            | Error _ -> ()
            | Ok _ -> Alcotest.fail "revalidate after reload must require a fresh validate");
            (* And a fresh validate re-arms revalidation. *)
            let (_ : Protocol.summary) =
              Result.get_ok
                (Client.validate client ~on_verdict:ignore (Protocol.job ~frames:[ f' ] ()))
            in
            let s'' = Result.get_ok (Client.revalidate client ~on_verdict:ignore f') in
            Alcotest.(check (option (list string)))
              "no change after re-validate" (Some []) s''.Protocol.s_revalidated));
    Alcotest.test_case "multi-frame and filtered validates retain no baseline" `Quick (fun () ->
        let f = Scenarios.Host.compliant () in
        let server = make_server () in
        let client = Client.in_process server in
        Fun.protect
          ~finally:(fun () ->
            Client.close client;
            Server.destroy server)
          (fun () ->
            let run job =
              let (_ : Protocol.summary) =
                Result.get_ok (Client.validate client ~on_verdict:ignore job)
              in
              ()
            in
            run (Protocol.job ~frames:(fleet ()) ());
            run (Protocol.job ~frames:[ f ] ~entities:[ "sshd" ] ());
            run (Protocol.job ~frames:[ f ] ~tags:[ "#security" ] ());
            run (Protocol.job ~frames:[ f ] ~chaos:1 ());
            let st = Result.get_ok (Client.stats client) in
            Alcotest.(check int) "nothing retained" 0 st.Protocol.st_retained_frames));
    Alcotest.test_case "watch revalidates each changed snapshot" `Quick (fun () ->
        let f = Scenarios.Host.compliant () in
        let f' = broken_host () in
        (* The watched "file": f, unchanged, broken, unchanged, fixed. *)
        let snapshots = ref [ f; f; f'; f'; f ] in
        let load () =
          match !snapshots with
          | [] -> Ok f
          | [ last ] -> Ok last
          | s :: rest ->
              snapshots := rest;
              Ok s
        in
        let polls = ref 0 in
        let sleep () =
          incr polls;
          !polls <= 10
        in
        let events = ref [] in
        let server = make_server () in
        let client = Client.in_process server in
        Fun.protect
          ~finally:(fun () ->
            Client.close client;
            Server.destroy server)
          (fun () ->
            match
              Client.watch client ~load ~sleep ~max_events:2
                ~on_event:(fun s -> events := s :: !events)
                ()
            with
            | Error m -> Alcotest.failf "watch: %s" m
            | Ok n ->
                Alcotest.(check int) "two change events" 2 n;
                let revalidated =
                  List.rev_map (fun (s : Protocol.summary) -> s.Protocol.s_revalidated) !events
                in
                Alcotest.(check (list (option (list string))))
                  "each event re-evaluated sshd"
                  [ Some [ "sshd" ]; Some [ "sshd" ] ]
                  revalidated));
  ]

let suite = protocol_cases @ differential_cases @ containment_cases @ lifecycle_cases
