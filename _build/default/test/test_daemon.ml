(* The [validated] daemon: protocol codec/framing round-trips, the
   differential identity of streamed verdicts against the one-shot
   engine (all three engines, several job counts, chaos on and off),
   per-connection failure containment, baseline retention across
   reload, and watch mode over an injected transport. *)

open Daemon

let source = Rulesets.source
let manifest = Rulesets.manifest
let make_server ?(jobs = 1) () = Result.get_ok (Server.create ~jobs ~source ~manifest ())

let fleet () =
  [
    Scenarios.Host.compliant ();
    Scenarios.Host.misconfigured ();
    Scenarios.Webstack.nginx_container_frame ~compliant:false;
    Scenarios.Webstack.mysql_container_frame ~compliant:true;
  ]

let verdict_sig (v : Protocol.verdict) =
  (v.Protocol.v_entity, v.Protocol.v_frame, v.Protocol.v_rule, v.Protocol.v_verdict,
   v.Protocol.v_detail, String.concat "\x00" v.Protocol.v_evidence)

let result_sig (r : Cvl.Engine.result) =
  ( r.Cvl.Engine.entity,
    r.Cvl.Engine.frame_id,
    Cvl.Rule.name r.Cvl.Engine.rule,
    Cvl.Engine.verdict_to_string r.Cvl.Engine.verdict,
    r.Cvl.Engine.detail,
    String.concat "\x00" r.Cvl.Engine.evidence )

let sig_t = Alcotest.(list (pair (pair string string) (pair (pair string string) (pair string string))))
let nest (a, b, c, d, e, f) = ((a, b), ((c, d), (e, f)))

(* ---------------------------------------------------------------- *)
(* Protocol                                                          *)
(* ---------------------------------------------------------------- *)

let check_request_roundtrip r =
  let json = Protocol.request_to_json r in
  match Protocol.request_of_json json with
  | Error m -> Alcotest.failf "request did not decode: %s" m
  | Ok r' ->
      Alcotest.(check string)
        "request JSON round-trip" (Jsonlite.to_string json)
        (Jsonlite.to_string (Protocol.request_to_json r'))

let check_response_roundtrip r =
  let json = Protocol.response_to_json r in
  match Protocol.response_of_json json with
  | Error m -> Alcotest.failf "response did not decode: %s" m
  | Ok r' ->
      Alcotest.(check string)
        "response JSON round-trip" (Jsonlite.to_string json)
        (Jsonlite.to_string (Protocol.response_to_json r'))

(* Feed raw bytes to the framed reader. *)
let with_bytes bytes f =
  let path = Filename.temp_file "daemon" ".bin" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      Out_channel.with_open_bin path (fun oc -> Out_channel.output_string oc bytes);
      In_channel.with_open_bin path f)

let read_kind ic =
  match Protocol.read_message ic with
  | Protocol.Msg _ -> "msg"
  | Protocol.Bad_payload _ -> "bad-payload"
  | Protocol.Truncated _ -> "truncated"
  | Protocol.Closed -> "closed"

(* List elements evaluate right-to-left: force the reads in order. *)
let read_kinds ic n =
  let rec go n acc = if n = 0 then List.rev acc else go (n - 1) (read_kind ic :: acc) in
  go n []

let protocol_cases =
  [
    Alcotest.test_case "requests round-trip through JSON" `Quick (fun () ->
        let f = Scenarios.Host.compliant () in
        List.iter check_request_roundtrip
          [
            Protocol.Ping;
            Protocol.Validate (Protocol.job ());
            Protocol.Validate
              (Protocol.job ~frames:[ f ] ~frame_files:[ "a.json"; "b.json" ]
                 ~tags:[ "#security" ] ~entities:[ "sshd"; "sysctl" ] ~engine:`Compiled
                 ~jobs:4 ~keep_not_applicable:false ~chaos:7 ~deadline_ms:250 ());
            Protocol.Hello { version = Protocol.binary_version };
            Protocol.Revalidate
              { frame = Some f; frame_file = None; deadline_ms = None; full = false };
            Protocol.Revalidate
              { frame = None; frame_file = Some "f.json"; deadline_ms = Some 50; full = true };
            Protocol.Reload_rules;
            Protocol.Stats;
            Protocol.Shutdown;
          ]);
    Alcotest.test_case "responses round-trip through JSON" `Quick (fun () ->
        List.iter check_response_roundtrip
          [
            Protocol.Pong;
            Protocol.Welcome { version = Protocol.binary_version };
            Protocol.Verdict
              {
                Protocol.v_entity = "sshd";
                v_frame = "host-1";
                v_rule = "PermitRootLogin";
                v_verdict = "not-matched";
                v_detail = "expected no, got yes";
                v_evidence = [ "/etc/ssh/sshd_config:12" ];
              };
            Protocol.Summary
              {
                Protocol.s_total = 170;
                s_matched = 140;
                s_violations = 25;
                s_not_present = 3;
                s_not_applicable = 2;
                s_errors = 0;
                s_degraded = false;
                s_engine = `Fused;
                s_job_ms = 12.5;
                s_cache_hits = 6;
                s_cache_misses = 0;
                s_revalidated = Some [ "sshd" ];
              };
            Protocol.Stats_reply
              {
                Protocol.st_requests = 5;
                st_jobs = 3;
                st_verdicts = 510;
                st_protocol_errors = 1;
                st_contained = 0;
                st_reloads = 1;
                st_entities = 15;
                st_rules = 170;
                st_retained_frames = 1;
                st_p50_ms = 1.0;
                st_p99_ms = 2.0;
                st_mean_ms = 1.2;
                st_verdicts_per_sec = 40000.0;
                st_sessions = 2;
                st_peak_sessions = 4;
                st_shed = 1;
                st_deadline_misses = 1;
                st_idle_reaped = 2;
                st_crashed = 1;
                st_v1_connections = 3;
                st_v2_connections = 2;
                st_v1_bytes_out = 4096;
                st_v2_bytes_out = 1024;
                st_delta_streams = 2;
                st_delta_copied = 480;
              };
            Protocol.Reloaded { entities = 15; rules = 170 };
            Protocol.Overloaded { queue_depth = 21; retry_after_ms = 125 };
            Protocol.Error_reply "boom";
            Protocol.Bye;
          ]);
    Alcotest.test_case "framing reads messages then a clean EOF" `Quick (fun () ->
        let buf = Buffer.create 64 in
        let oc_path = Filename.temp_file "daemon" ".bin" in
        Out_channel.with_open_bin oc_path (fun oc ->
            Protocol.write_message oc (Jsonlite.Str "one");
            Protocol.write_message oc (Jsonlite.Num 2.0));
        Buffer.add_string buf (In_channel.with_open_bin oc_path In_channel.input_all);
        Sys.remove oc_path;
        with_bytes (Buffer.contents buf) (fun ic ->
            Alcotest.(check (list string))
              "two messages then closed" [ "msg"; "msg"; "closed" ] (read_kinds ic 3)));
    Alcotest.test_case "framing: errors are classified" `Quick (fun () ->
        let kind bytes = with_bytes bytes read_kind in
        (* Non-numeric length line: nobody knows where the next message
           starts. *)
        Alcotest.(check string) "garbage length" "truncated" (kind "xyz\n{}\n");
        Alcotest.(check string) "negative length" "truncated" (kind "-4\n{}\n");
        (* EOF in the middle of a declared payload. *)
        Alcotest.(check string) "short payload" "truncated" (kind "100\n{\"op\":");
        (* Payload not followed by the frame-terminating newline. *)
        Alcotest.(check string) "missing terminator" "truncated" (kind "2\n{}X");
        (* Framed correctly but not JSON: stream still synchronized. *)
        Alcotest.(check string) "non-JSON payload" "bad-payload" (kind "9\nnot json!\n");
        (* And the reader really is still synchronized after one. *)
        with_bytes "9\nnot json!\n4\ntrue\n" (fun ic ->
            Alcotest.(check (list string))
              "bad payload, then a good message" [ "bad-payload"; "msg"; "closed" ]
              (read_kinds ic 3)));
  ]

(* ---------------------------------------------------------------- *)
(* Differential: daemon stream vs one-shot engine                    *)
(* ---------------------------------------------------------------- *)

let one_shot_signature ~rules ~chaos frames =
  let plan = Option.map (fun seed -> Faultsim.sample ~seed ~rules frames) chaos in
  Option.iter Faultsim.arm plan;
  Fun.protect
    ~finally:(fun () -> if plan <> None then Faultsim.disarm ())
    (fun () ->
      let t = Cvl.Validator.run_loaded ~rules frames in
      List.map result_sig t.Cvl.Validator.results)

let differential_cases =
  [
    Alcotest.test_case "streamed verdicts byte-identical to one-shot runs" `Slow (fun () ->
        let frames = fleet () in
        let rules =
          Result.get_ok (Cvl.Validator.load_rules ~source ~manifest)
        in
        let server = make_server () in
        let client = Client.in_process server in
        Fun.protect
          ~finally:(fun () ->
            Client.close client;
            Server.destroy server)
          (fun () ->
            List.iter
              (fun ((engine : Protocol.engine), jobs, chaos) ->
                let reference = one_shot_signature ~rules ~chaos frames in
                let streamed = ref [] in
                let summary =
                  Client.validate client
                    ~on_verdict:(fun v -> streamed := verdict_sig v :: !streamed)
                    (Protocol.job ~frames ~engine ~jobs ?chaos ())
                in
                let label =
                  Printf.sprintf "%s, jobs=%d, chaos=%s"
                    (Protocol.engine_to_string engine)
                    jobs
                    (match chaos with None -> "off" | Some s -> string_of_int s)
                in
                match summary with
                | Error m -> Alcotest.failf "%s: stream failed: %s" label m
                | Ok s ->
                    Alcotest.(check sig_t)
                      (label ^ ": same verdicts, same order")
                      (List.map nest reference)
                      (List.map nest (List.rev !streamed));
                    Alcotest.(check int)
                      (label ^ ": summary counts the stream")
                      (List.length reference) s.Protocol.s_total;
                    Alcotest.(check bool)
                      (label ^ ": chaos degrades, clean runs do not")
                      (chaos <> None) s.Protocol.s_degraded)
              [
                (`Fused, 1, None);
                (`Fused, 4, None);
                (`Fused, 1, Some 1);
                (`Compiled, 1, None);
                (`Compiled, 4, Some 1);
                (`Interpreted, 1, None);
                (`Interpreted, 4, Some 1);
              ]));
  ]

(* ---------------------------------------------------------------- *)
(* Containment: malformed and truncated peers                        *)
(* ---------------------------------------------------------------- *)

(* Serve one raw connection: [f] talks bytes to the server, returns
   with the connection outcome once the peer side is closed. *)
let raw_connection server f =
  let client_fd, server_fd = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  let domain =
    Domain.spawn (fun () ->
        let ic = Unix.in_channel_of_descr server_fd in
        let oc = Unix.out_channel_of_descr server_fd in
        let outcome = Server.serve server ic oc in
        close_out_noerr oc;
        close_in_noerr ic;
        outcome)
  in
  let ic = Unix.in_channel_of_descr client_fd in
  let oc = Unix.out_channel_of_descr client_fd in
  let result = f ic oc in
  close_out_noerr oc;
  close_in_noerr ic;
  (result, Domain.join domain)

let expect_pong ic =
  match Protocol.read_response ic with
  | Ok Protocol.Pong -> ()
  | Ok _ -> Alcotest.fail "expected pong"
  | Error m -> Alcotest.failf "expected pong, got error: %s" m

let expect_error ic =
  match Protocol.read_response ic with
  | Ok (Protocol.Error_reply m) -> m
  | Ok _ -> Alcotest.fail "expected an error reply"
  | Error m -> Alcotest.failf "transport error instead of error reply: %s" m

let containment_cases =
  [
    Alcotest.test_case "malformed payload answered, connection continues" `Quick (fun () ->
        let server = make_server () in
        Fun.protect
          ~finally:(fun () -> Server.destroy server)
          (fun () ->
            let (), outcome =
              raw_connection server (fun ic oc ->
                  Protocol.write_request oc Protocol.Ping;
                  expect_pong ic;
                  (* Well-framed garbage: the stream stays synchronized,
                     so the server answers and keeps this connection. *)
                  output_string oc "9\nnot json!\n";
                  flush oc;
                  let m = expect_error ic in
                  Alcotest.(check bool) "error names the malformed request" true
                    (String.length m > 0);
                  Protocol.write_request oc Protocol.Ping;
                  expect_pong ic)
            in
            Alcotest.(check bool) "clean disconnect" true (outcome = `Disconnect)));
    Alcotest.test_case "truncated stream drops only that connection" `Quick (fun () ->
        let server = make_server () in
        Fun.protect
          ~finally:(fun () -> Server.destroy server)
          (fun () ->
            let (), outcome =
              raw_connection server (fun ic oc ->
                  Protocol.write_request oc Protocol.Ping;
                  expect_pong ic;
                  (* Declare 999 bytes, send 6, then half-close: the
                     server sees EOF mid-payload — desynchronized. *)
                  output_string oc "999\n{\"op\":";
                  flush oc;
                  (try Unix.shutdown (Unix.descr_of_out_channel oc) Unix.SHUTDOWN_SEND
                   with Unix.Unix_error _ -> ());
                  let (_ : string) = expect_error ic in
                  ())
            in
            Alcotest.(check bool) "connection dropped" true (outcome = `Disconnect);
            (* The server value survives: the next connection serves. *)
            let (), outcome =
              raw_connection server (fun ic oc ->
                  Protocol.write_request oc Protocol.Ping;
                  expect_pong ic)
            in
            Alcotest.(check bool) "server alive for the next peer" true
              (outcome = `Disconnect)));
    Alcotest.test_case "a failing job is contained, the server keeps serving" `Quick (fun () ->
        let server = make_server () in
        let client = Client.in_process server in
        Fun.protect
          ~finally:(fun () ->
            Client.close client;
            Server.destroy server)
          (fun () ->
            (* Unreadable frame file. *)
            (match
               Client.validate client ~on_verdict:ignore
                 (Protocol.job ~frame_files:[ "/no/such/frame.json" ] ())
             with
            | Error _ -> ()
            | Ok _ -> Alcotest.fail "expected an error for an unreadable frame file");
            (* Unknown entity filter. *)
            (match
               Client.validate client ~on_verdict:ignore
                 (Protocol.job ~frames:[ Scenarios.Host.compliant () ]
                    ~entities:[ "no-such-entity" ] ())
             with
            | Error m ->
                Alcotest.(check bool) "error names the entity" true
                  (String.length m > 0)
            | Ok _ -> Alcotest.fail "expected an error for an unknown entity");
            (* No frames at all. *)
            (match Client.validate client ~on_verdict:ignore (Protocol.job ()) with
            | Error _ -> ()
            | Ok _ -> Alcotest.fail "expected an error for an empty job");
            Alcotest.(check (result unit string)) "still serving" (Ok ())
              (Client.ping client);
            match Client.stats client with
            | Error m -> Alcotest.failf "stats: %s" m
            | Ok st ->
                Alcotest.(check int) "every failure contained" 3
                  st.Protocol.st_contained;
                Alcotest.(check int) "no protocol errors" 0
                  st.Protocol.st_protocol_errors));
  ]

(* ---------------------------------------------------------------- *)
(* Retained baselines, reload, watch                                 *)
(* ---------------------------------------------------------------- *)

let broken_host () =
  let f = Scenarios.Host.compliant () in
  Frames.Frame.set_content f ~path:"/etc/ssh/sshd_config"
    (Scenarios.Host.good_sshd_config ^ "PermitRootLogin yes\n")

let lifecycle_cases =
  [
    Alcotest.test_case "revalidate needs a baseline; reload drops them all" `Quick (fun () ->
        let f = Scenarios.Host.compliant () in
        let f' = broken_host () in
        let server = make_server () in
        let client = Client.in_process server in
        Fun.protect
          ~finally:(fun () ->
            Client.close client;
            Server.destroy server)
          (fun () ->
            (* No baseline yet. *)
            (match Client.revalidate client ~on_verdict:ignore f' with
            | Error m ->
                Alcotest.(check bool) "asks for a validate first" true
                  (String.length m > 0)
            | Ok _ -> Alcotest.fail "revalidate without a baseline must fail");
            (* Validate (alone) retains the baseline... *)
            let s =
              Result.get_ok
                (Client.validate client ~on_verdict:ignore (Protocol.job ~frames:[ f ] ()))
            in
            Alcotest.(check bool) "clean run" false s.Protocol.s_degraded;
            let st = Result.get_ok (Client.stats client) in
            Alcotest.(check int) "one baseline retained" 1 st.Protocol.st_retained_frames;
            (* ...so revalidate works and re-evaluates only sshd. *)
            let s' = Result.get_ok (Client.revalidate client ~on_verdict:ignore f') in
            Alcotest.(check (option (list string)))
              "only sshd re-evaluated" (Some [ "sshd" ]) s'.Protocol.s_revalidated;
            Alcotest.(check bool) "the regression is visible" true
              (s'.Protocol.s_violations > s.Protocol.s_violations);
            (* Rule reload invalidates every retained baseline: the old
               results were produced by the old ruleset. *)
            let entities, rules = Result.get_ok (Client.reload_rules client) in
            Alcotest.(check bool) "reload reports the corpus" true (entities > 0 && rules > 0);
            let st = Result.get_ok (Client.stats client) in
            Alcotest.(check int) "baselines dropped" 0 st.Protocol.st_retained_frames;
            Alcotest.(check int) "reload counted" 1 st.Protocol.st_reloads;
            (match Client.revalidate client ~on_verdict:ignore f' with
            | Error _ -> ()
            | Ok _ -> Alcotest.fail "revalidate after reload must require a fresh validate");
            (* And a fresh validate re-arms revalidation. *)
            let (_ : Protocol.summary) =
              Result.get_ok
                (Client.validate client ~on_verdict:ignore (Protocol.job ~frames:[ f' ] ()))
            in
            let s'' = Result.get_ok (Client.revalidate client ~on_verdict:ignore f') in
            Alcotest.(check (option (list string)))
              "no change after re-validate" (Some []) s''.Protocol.s_revalidated));
    Alcotest.test_case "multi-frame and filtered validates retain no baseline" `Quick (fun () ->
        let f = Scenarios.Host.compliant () in
        let server = make_server () in
        let client = Client.in_process server in
        Fun.protect
          ~finally:(fun () ->
            Client.close client;
            Server.destroy server)
          (fun () ->
            let run job =
              let (_ : Protocol.summary) =
                Result.get_ok (Client.validate client ~on_verdict:ignore job)
              in
              ()
            in
            run (Protocol.job ~frames:(fleet ()) ());
            run (Protocol.job ~frames:[ f ] ~entities:[ "sshd" ] ());
            run (Protocol.job ~frames:[ f ] ~tags:[ "#security" ] ());
            run (Protocol.job ~frames:[ f ] ~chaos:1 ());
            let st = Result.get_ok (Client.stats client) in
            Alcotest.(check int) "nothing retained" 0 st.Protocol.st_retained_frames));
    Alcotest.test_case "watch revalidates each changed snapshot" `Quick (fun () ->
        let f = Scenarios.Host.compliant () in
        let f' = broken_host () in
        (* The watched "file": f, unchanged, broken, unchanged, fixed. *)
        let snapshots = ref [ f; f; f'; f'; f ] in
        let load () =
          match !snapshots with
          | [] -> Ok f
          | [ last ] -> Ok last
          | s :: rest ->
              snapshots := rest;
              Ok s
        in
        let polls = ref 0 in
        let sleep () =
          incr polls;
          !polls <= 10
        in
        let events = ref [] in
        let server = make_server () in
        let client = Client.in_process server in
        Fun.protect
          ~finally:(fun () ->
            Client.close client;
            Server.destroy server)
          (fun () ->
            match
              Client.watch client ~load ~sleep ~max_events:2
                ~on_event:(fun s _ -> events := s :: !events)
                ()
            with
            | Error m -> Alcotest.failf "watch: %s" m
            | Ok n ->
                Alcotest.(check int) "two change events" 2 n;
                let revalidated =
                  List.rev_map (fun (s : Protocol.summary) -> s.Protocol.s_revalidated) !events
                in
                Alcotest.(check (list (option (list string))))
                  "each event re-evaluated sshd"
                  [ Some [ "sshd" ]; Some [ "sshd" ] ]
                  revalidated));
  ]

(* ---------------------------------------------------------------- *)
(* Deadlines                                                         *)
(* ---------------------------------------------------------------- *)

let contains hay needle =
  let n = String.length needle and h = String.length hay in
  let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
  n = 0 || go 0

let check_contains label hay needle =
  if not (contains hay needle) then
    Alcotest.failf "%s: %S does not mention %S" label hay needle

let deadline_cases =
  [
    Alcotest.test_case "deadline: none is unlimited forever" `Quick (fun () ->
        Alcotest.(check bool) "unlimited" true (Deadline.unlimited Deadline.none);
        Alcotest.(check bool) "never expired" false (Deadline.expired Deadline.none);
        Alcotest.(check (option (float 0.0))) "no remaining" None
          (Deadline.remaining_ms Deadline.none);
        Alcotest.(check (result unit string)) "check passes" (Ok ())
          (Deadline.check Deadline.none ~what:"anything"));
    Alcotest.test_case "deadline: a fake clock drives expiry deterministically" `Quick
      (fun () ->
        let now = ref 0.0 in
        let clock () = !now in
        let d = Deadline.after_ms ~clock 100 in
        Alcotest.(check bool) "fresh budget lives" false (Deadline.expired d);
        Alcotest.(check (option (float 0.001))) "full budget" (Some 100.0)
          (Deadline.remaining_ms d);
        now := 0.075;
        Alcotest.(check (option (float 0.001))) "quarter left" (Some 25.0)
          (Deadline.remaining_ms d);
        now := 0.2;
        Alcotest.(check bool) "expired" true (Deadline.expired d);
        Alcotest.(check (option (float 0.001))) "clamped at zero" (Some 0.0)
          (Deadline.remaining_ms d);
        match Deadline.check d ~what:"engine run" with
        | Ok () -> Alcotest.fail "expired deadline passed check"
        | Error m ->
            check_contains "names the stage" m "engine run";
            check_contains "names the cause" m "deadline exceeded");
    Alcotest.test_case "deadline: non-positive budgets are born expired" `Quick (fun () ->
        Alcotest.(check bool) "zero" true (Deadline.expired (Deadline.after_ms 0));
        Alcotest.(check bool) "negative" true (Deadline.expired (Deadline.after_ms (-5))));
    Alcotest.test_case "deadline: the request override beats the server default" `Quick
      (fun () ->
        let now = ref 0.0 in
        let clock () = !now in
        let d = Deadline.of_request ~clock ~default_ms:(Some 1000) (Some 10) in
        Alcotest.(check (option (float 0.001))) "override wins" (Some 10.0)
          (Deadline.remaining_ms d);
        let d = Deadline.of_request ~clock ~default_ms:(Some 50) None in
        Alcotest.(check (option (float 0.001))) "default applies" (Some 50.0)
          (Deadline.remaining_ms d);
        Alcotest.(check bool) "neither set = unlimited" true
          (Deadline.unlimited (Deadline.of_request ~clock ~default_ms:None None)));
    Alcotest.test_case "an exhausted budget answers an error, counts a miss" `Quick
      (fun () ->
        let f = Scenarios.Host.compliant () in
        let config = { Server.default_config with Server.deadline_ms = Some 0 } in
        let server = Result.get_ok (Server.create ~config ~source ~manifest ()) in
        let client = Client.in_process server in
        Fun.protect
          ~finally:(fun () ->
            Client.close client;
            Server.destroy server)
          (fun () ->
            (* The server-wide default budget of 0 is already exhausted
               at the first gate. *)
            (match
               Client.validate client ~on_verdict:ignore (Protocol.job ~frames:[ f ] ())
             with
            | Ok _ -> Alcotest.fail "a 0ms budget must expire"
            | Error m -> check_contains "expiry reaches the client" m "deadline exceeded");
            (* A per-request override beats the hopeless default. *)
            (match
               Client.validate client ~on_verdict:ignore
                 (Protocol.job ~frames:[ f ] ~deadline_ms:60_000 ())
             with
            | Ok _ -> ()
            | Error m -> Alcotest.failf "override should rescue the job: %s" m);
            Alcotest.(check (result unit string)) "still serving" (Ok ())
              (Client.ping client);
            let st = Result.get_ok (Client.stats client) in
            Alcotest.(check int) "one deadline miss" 1 st.Protocol.st_deadline_misses;
            Alcotest.(check int) "misses are not crashes" 0 st.Protocol.st_contained));
  ]

(* ---------------------------------------------------------------- *)
(* Concurrency: N clients, byte-identical streams                    *)
(* ---------------------------------------------------------------- *)

(* Block the first rule evaluation of a job on a condition variable so
   a test can hold a job in-flight while it probes the server. *)
let eval_gate () =
  let m = Mutex.create () in
  let c = Condition.create () in
  let entered = ref false and hold = ref true in
  let hook ~entity:_ ~rule:_ ~frame_id:_ =
    Mutex.lock m;
    if !hold && not !entered then begin
      entered := true;
      Condition.broadcast c;
      while !hold do
        Condition.wait c m
      done
    end;
    Mutex.unlock m
  in
  let await_entered () =
    Mutex.lock m;
    while not !entered do
      Condition.wait c m
    done;
    Mutex.unlock m
  in
  let release () =
    Mutex.lock m;
    hold := false;
    Condition.broadcast c;
    Mutex.unlock m
  in
  (hook, await_entered, release)

let concurrent_cases =
  [
    Alcotest.test_case "4 concurrent clients stream byte-identical output" `Slow (fun () ->
        let frames = fleet () in
        let rules = Result.get_ok (Cvl.Validator.load_rules ~source ~manifest) in
        let combos =
          [| (`Fused, None); (`Compiled, Some 1); (`Interpreted, None); (`Fused, Some 2) |]
        in
        (* References run first, alone: chaos references arm the
           process-global fault hooks, which must never overlap the
           concurrent phase. *)
        let refs =
          Array.map (fun (_, chaos) -> one_shot_signature ~rules ~chaos frames) combos
        in
        let server = make_server ~jobs:2 () in
        let run_client i () =
          let engine, chaos = combos.(i) in
          let client = Client.in_process server in
          Fun.protect
            ~finally:(fun () -> Client.close client)
            (fun () ->
              List.init 2 (fun _ ->
                  let streamed = ref [] in
                  match
                    Client.validate client
                      ~on_verdict:(fun v -> streamed := verdict_sig v :: !streamed)
                      (Protocol.job ~frames ~engine ?chaos ())
                  with
                  | Error m -> Error m
                  | Ok s -> Ok (List.rev !streamed, s.Protocol.s_degraded)))
        in
        let domains = List.init 4 (fun i -> Domain.spawn (run_client i)) in
        let outputs = List.map Domain.join domains in
        Fun.protect
          ~finally:(fun () -> Server.destroy server)
          (fun () ->
            List.iteri
              (fun i reps ->
                let engine, chaos = combos.(i) in
                let label =
                  Printf.sprintf "client %d (%s, chaos=%s)" i
                    (Protocol.engine_to_string engine)
                    (match chaos with None -> "off" | Some s -> string_of_int s)
                in
                List.iteri
                  (fun rep outcome ->
                    match outcome with
                    | Error m -> Alcotest.failf "%s rep %d: %s" label rep m
                    | Ok (streamed, degraded) ->
                        Alcotest.(check sig_t)
                          (Printf.sprintf "%s rep %d: byte-identical stream" label rep)
                          (List.map nest refs.(i))
                          (List.map nest streamed);
                        Alcotest.(check bool)
                          (Printf.sprintf "%s rep %d: chaos degrades" label rep)
                          (chaos <> None) degraded)
                  reps)
              outputs;
            let probe = Client.in_process server in
            Fun.protect
              ~finally:(fun () -> Client.close probe)
              (fun () ->
                let st = Result.get_ok (Client.stats probe) in
                Alcotest.(check bool) "sessions overlapped" true
                  (st.Protocol.st_peak_sessions >= 2);
                Alcotest.(check int) "8 jobs served" 8 st.Protocol.st_jobs;
                Alcotest.(check int) "nothing shed at this load" 0 st.Protocol.st_shed)));
    Alcotest.test_case "over-budget jobs answer overloaded, never a silent drop" `Quick
      (fun () ->
        let f = Scenarios.Host.compliant () in
        let rules = Result.get_ok (Cvl.Validator.load_rules ~source ~manifest) in
        let reference = one_shot_signature ~rules ~chaos:None [ f ] in
        let config =
          { Server.default_config with Server.max_inflight = 1; queue_depth = 0 }
        in
        let server = Result.get_ok (Server.create ~config ~source ~manifest ()) in
        let hook, await_entered, release = eval_gate () in
        Cvl.Resilience.set_eval_hook (Some hook);
        Fun.protect
          ~finally:(fun () ->
            release ();
            Cvl.Resilience.set_eval_hook None;
            Server.destroy server)
          (fun () ->
            let blocked =
              Domain.spawn (fun () ->
                  let client = Client.in_process server in
                  let streamed = ref [] in
                  let r =
                    Client.validate client
                      ~on_verdict:(fun v -> streamed := verdict_sig v :: !streamed)
                      (Protocol.job ~frames:[ f ] ~engine:`Compiled ())
                  in
                  Client.close client;
                  (r, List.rev !streamed))
            in
            await_entered ();
            (* The one slot is taken and the queue is zero: the next job
               is shed with a typed reply, queue depth and retry hint. *)
            let client = Client.in_process server in
            Fun.protect
              ~finally:(fun () -> Client.close client)
              (fun () ->
                (match
                   Client.rpc client
                     (Protocol.Validate (Protocol.job ~frames:[ f ] ~engine:`Compiled ()))
                 with
                | Ok (Protocol.Overloaded { queue_depth; retry_after_ms }) ->
                    Alcotest.(check int) "queue depth reported" 1 queue_depth;
                    Alcotest.(check bool) "retry hint is sane" true
                      (retry_after_ms >= 5 && retry_after_ms <= 5000)
                | Ok _ -> Alcotest.fail "expected a typed overloaded reply"
                | Error m -> Alcotest.failf "rpc: %s" m);
                (match
                   Client.validate client ~on_verdict:ignore
                     (Protocol.job ~frames:[ f ] ~engine:`Compiled ())
                 with
                | Ok _ -> Alcotest.fail "shed job must not succeed"
                | Error m ->
                    check_contains "stream surfaces the shed" m "overloaded";
                    check_contains "with the queue depth" m "queue depth");
                release ();
                let r, streamed = Domain.join blocked in
                (match r with
                | Error m -> Alcotest.failf "blocked job should finish: %s" m
                | Ok _ ->
                    Alcotest.(check sig_t) "blocked job streams byte-identical"
                      (List.map nest reference) (List.map nest streamed));
                let st = Result.get_ok (Client.stats client) in
                Alcotest.(check int) "both shed jobs counted" 2 st.Protocol.st_shed;
                Alcotest.(check int) "sheds are not crashes" 0 st.Protocol.st_contained)));
  ]

(* ---------------------------------------------------------------- *)
(* Listener: real sockets, chaos, drain, supervision                  *)
(* ---------------------------------------------------------------- *)

let temp_socket_path () =
  let p = Filename.temp_file "cvld" ".sock" in
  (try Sys.remove p with Sys_error _ -> ());
  p

let rec dial ?(tries = 500) path =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  match Unix.connect fd (Unix.ADDR_UNIX path) with
  | () -> fd
  | exception Unix.Unix_error _ ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      if tries = 0 then failwith "listener never came up"
      else begin
        Unix.sleepf 0.01;
        dial ~tries:(tries - 1) path
      end

let write_all fd s =
  let n = String.length s in
  let rec go off = if off < n then go (off + Unix.write_substring fd s off (n - off)) in
  go 0

(* Read one validate reply stream off a raw connection. *)
let read_stream ic =
  let rec go acc =
    match Protocol.read_response ic with
    | Ok (Protocol.Verdict v) -> go (verdict_sig v :: acc)
    | Ok (Protocol.Summary _) -> Ok (List.rev acc)
    | Ok (Protocol.Error_reply m) -> Error m
    | Ok _ -> Error "unexpected reply in stream"
    | Error m -> Error m
  in
  go []

let make_logged_server ?(config = Server.default_config) ?log () =
  let lines = ref [] in
  let lock = Mutex.create () in
  let log =
    match log with
    | Some f -> f
    | None -> fun _ -> ()
  in
  let logger m =
    Mutex.lock lock;
    lines := m :: !lines;
    Mutex.unlock lock;
    log m
  in
  let server = Result.get_ok (Server.create ~config ~log:logger ~source ~manifest ()) in
  (server, fun () -> List.rev !lines)

let mangle_kinds =
  [
    Faultsim.Slow_loris { chunk_bytes = 3 };
    Faultsim.Mid_stream_disconnect { after_bytes = 11 };
    Faultsim.Stalled_read;
    Faultsim.Short_write { drop_bytes = 4 };
  ]

let listener_cases =
  [
    Alcotest.test_case "io faults: plans are pure in the seed, mangle keeps prefixes"
      `Quick (fun () ->
        let streams = List.init 8 (fun i -> Printf.sprintf "c%d" i) in
        let p1 = Faultsim.sample_io ~seed:42 ~streams () in
        let p2 = Faultsim.sample_io ~seed:42 ~streams () in
        Alcotest.(check string) "same seed, same plan" (Faultsim.describe_io p1)
          (Faultsim.describe_io p2);
        let all = Faultsim.sample_io ~rate:1.0 ~seed:7 ~streams () in
        Alcotest.(check int) "rate 1 selects every stream" (List.length streams)
          (List.length all.Faultsim.io_faults);
        let none = Faultsim.sample_io ~rate:0.0 ~seed:7 ~streams () in
        Alcotest.(check int) "rate 0 selects none" 0 (List.length none.Faultsim.io_faults);
        let frame = Protocol.frame_bytes (Protocol.request_to_json Protocol.Ping) in
        List.iter
          (fun kind ->
            let chunks, disposition = Faultsim.mangle kind frame in
            let sent = String.concat "" chunks in
            Alcotest.(check bool) "chunks form a prefix" true
              (String.length sent <= String.length frame
              && String.sub frame 0 (String.length sent) = sent);
            match kind with
            | Faultsim.Slow_loris _ | Faultsim.Stalled_read ->
                Alcotest.(check string) "whole frame arrives" frame sent;
                Alcotest.(check bool) "keeps the connection" true
                  (disposition = `Keep_open)
            | Faultsim.Mid_stream_disconnect _ | Faultsim.Short_write _ ->
                Alcotest.(check bool) "strictly mid-frame" true
                  (String.length sent >= 1 && String.length sent < String.length frame);
                Alcotest.(check bool) "slams the connection" true
                  (disposition = `Close_now))
          mangle_kinds);
    Alcotest.test_case "seeded socket chaos leaves the listener serving" `Slow (fun () ->
        let frames = [ Scenarios.Host.compliant (); Scenarios.Host.misconfigured () ] in
        let rules = Result.get_ok (Cvl.Validator.load_rules ~source ~manifest) in
        let reference = one_shot_signature ~rules ~chaos:None frames in
        let server, logs = make_logged_server () in
        let socket_path = temp_socket_path () in
        let listener = Domain.spawn (fun () -> Server.listen server ~socket_path) in
        let request_frame =
          Protocol.frame_bytes
            (Protocol.request_to_json (Protocol.Validate (Protocol.job ~frames ())))
        in
        let clean_stream label fd =
          let ic = Unix.in_channel_of_descr fd in
          write_all fd request_frame;
          (match read_stream ic with
          | Error m -> Alcotest.failf "%s: %s" label m
          | Ok streamed ->
              Alcotest.(check sig_t)
                (label ^ ": byte-identical to the one-shot run")
                (List.map nest reference) (List.map nest streamed));
          close_in_noerr ic
        in
        Fun.protect
          ~finally:(fun () -> Server.destroy server)
          (fun () ->
            (* Wait for the listener, then prove the clean path once. *)
            clean_stream "warmup" (dial socket_path);
            List.iter
              (fun seed ->
                let streams = List.init 4 (fun i -> Printf.sprintf "s%d" i) in
                let plan = Faultsim.sample_io ~seed ~streams () in
                List.iter
                  (fun stream ->
                    match Faultsim.io_fault_for plan stream with
                    | None -> clean_stream (Printf.sprintf "seed %d %s" seed stream)
                                (dial socket_path)
                    | Some { Faultsim.io_kind; _ } -> (
                        let fd = dial socket_path in
                        let chunks, disposition = Faultsim.mangle io_kind request_frame in
                        List.iter (write_all fd) chunks;
                        match (io_kind, disposition) with
                        | Faultsim.Slow_loris _, _ ->
                            (* Dribbled but complete: the stream still
                               answers, byte-identical. *)
                            let ic = Unix.in_channel_of_descr fd in
                            (match read_stream ic with
                            | Error m ->
                                Alcotest.failf "seed %d %s (slow-loris): %s" seed stream m
                            | Ok streamed ->
                                Alcotest.(check sig_t)
                                  (Printf.sprintf "seed %d %s: slow-loris stream survives"
                                     seed stream)
                                  (List.map nest reference) (List.map nest streamed));
                            close_in_noerr ic
                        | _, _ ->
                            (* Vanishing peers: hang up (possibly
                               mid-frame, possibly mid-reply). *)
                            (try Unix.close fd with Unix.Unix_error _ -> ())))
                  streams;
                (* Invariant: after every seeded plan the listener still
                   accepts and serves clean streams. *)
                clean_stream (Printf.sprintf "seed %d aftermath" seed) (dial socket_path))
              [ 1; 2; 3 ];
            let shutdown = Result.get_ok (Client.connect ~retry_for:5.0 socket_path) in
            let st = Result.get_ok (Client.stats shutdown) in
            Alcotest.(check bool) "truncated peers counted" true
              (st.Protocol.st_protocol_errors > 0);
            Alcotest.(check (result unit string)) "graceful shutdown" (Ok ())
              (Client.shutdown shutdown);
            Client.close shutdown;
            Domain.join listener;
            Alcotest.(check bool) "socket removed" false (Sys.file_exists socket_path);
            Alcotest.(check bool) "drain summary logged" true
              (List.exists (fun l -> contains l "drained:") (logs ()))));
    Alcotest.test_case "graceful drain finishes in-flight streams before stopping" `Slow
      (fun () ->
        let f = Scenarios.Host.compliant () in
        let rules = Result.get_ok (Cvl.Validator.load_rules ~source ~manifest) in
        let reference = one_shot_signature ~rules ~chaos:None [ f ] in
        let server, logs = make_logged_server () in
        let socket_path = temp_socket_path () in
        let listener = Domain.spawn (fun () -> Server.listen server ~socket_path) in
        let hook, await_entered, release = eval_gate () in
        Cvl.Resilience.set_eval_hook (Some hook);
        Fun.protect
          ~finally:(fun () ->
            release ();
            Cvl.Resilience.set_eval_hook None;
            Server.destroy server)
          (fun () ->
            let blocked =
              Domain.spawn (fun () ->
                  let client = Result.get_ok (Client.connect ~retry_for:5.0 socket_path) in
                  let streamed = ref [] in
                  let r =
                    Client.validate client
                      ~on_verdict:(fun v -> streamed := verdict_sig v :: !streamed)
                      (Protocol.job ~frames:[ f ] ~engine:`Compiled ())
                  in
                  Client.close client;
                  (r, List.rev !streamed))
            in
            await_entered ();
            (* Shut the server down while that job is mid-flight. *)
            let other = Result.get_ok (Client.connect ~retry_for:5.0 socket_path) in
            Alcotest.(check (result unit string)) "shutdown acknowledged" (Ok ())
              (Client.shutdown other);
            Client.close other;
            release ();
            let r, streamed = Domain.join blocked in
            (match r with
            | Error m -> Alcotest.failf "drained job should finish its stream: %s" m
            | Ok _ ->
                Alcotest.(check sig_t) "in-flight stream completed byte-identical"
                  (List.map nest reference) (List.map nest streamed));
            Domain.join listener;
            let lines = logs () in
            Alcotest.(check bool) "accept loop stop logged" true
              (List.exists (fun l -> contains l "draining: accept loop stopped") lines);
            Alcotest.(check bool) "drain summary logged" true
              (List.exists (fun l -> contains l "drained:") lines);
            Alcotest.(check bool) "no forced close needed" false
              (List.exists (fun l -> contains l "drain deadline hit") lines);
            Alcotest.(check bool) "socket removed" false (Sys.file_exists socket_path)));
    Alcotest.test_case "a crashing session is contained, the listener keeps serving"
      `Quick (fun () ->
        let crash_next = Atomic.make false in
        let log m =
          if contains m "validate" && Atomic.compare_and_set crash_next true false then
            failwith "injected session crash"
        in
        let server, logs = make_logged_server ~log () in
        let socket_path = temp_socket_path () in
        let listener = Domain.spawn (fun () -> Server.listen server ~socket_path) in
        Fun.protect
          ~finally:(fun () -> Server.destroy server)
          (fun () ->
            let victim = Result.get_ok (Client.connect ~retry_for:5.0 socket_path) in
            Atomic.set crash_next true;
            (match
               Client.validate victim ~on_verdict:ignore
                 (Protocol.job ~frames:[ Scenarios.Host.compliant () ] ())
             with
            | Ok _ -> Alcotest.fail "the crashed session cannot have answered"
            | Error _ -> ());
            Client.close victim;
            let survivor = Result.get_ok (Client.connect ~retry_for:5.0 socket_path) in
            Alcotest.(check (result unit string)) "listener still serving" (Ok ())
              (Client.ping survivor);
            let st = Result.get_ok (Client.stats survivor) in
            Alcotest.(check int) "crash counted" 1 st.Protocol.st_crashed;
            Alcotest.(check (result unit string)) "shutdown" (Ok ())
              (Client.shutdown survivor);
            Client.close survivor;
            Domain.join listener;
            Alcotest.(check bool) "supervisor logged the containment" true
              (List.exists (fun l -> contains l "session crashed (contained)") (logs ()))));
    Alcotest.test_case "connections past the cap are refused; no fd leaks" `Slow
      (fun () ->
        (* Warm up lazy runtime fds (domain machinery) so the before /
           after comparison only sees this test's descriptors. *)
        Domain.join (Domain.spawn (fun () -> ()));
        let count_fds () = Array.length (Sys.readdir "/proc/self/fd") in
        let config = { Server.default_config with Server.max_connections = 1 } in
        let server, logs = make_logged_server ~config () in
        let before = count_fds () in
        let socket_path = temp_socket_path () in
        let listener = Domain.spawn (fun () -> Server.listen server ~socket_path) in
        Fun.protect
          ~finally:(fun () -> Server.destroy server)
          (fun () ->
            let fd1 = dial socket_path in
            let ic1 = Unix.in_channel_of_descr fd1 in
            let oc1 = Unix.out_channel_of_descr fd1 in
            Protocol.write_request oc1 Protocol.Ping;
            expect_pong ic1;
            (* The only session slot is taken: the next connection gets
               a typed overloaded reply, then EOF. *)
            let fd2 = dial socket_path in
            let ic2 = Unix.in_channel_of_descr fd2 in
            (match Protocol.read_response ic2 with
            | Ok (Protocol.Overloaded { queue_depth; _ }) ->
                Alcotest.(check int) "reports the session count" 1 queue_depth
            | Ok _ -> Alcotest.fail "expected an overloaded refusal"
            | Error m -> Alcotest.failf "refused connection: %s" m);
            (match Protocol.read_message ic2 with
            | Protocol.Closed -> ()
            | _ -> Alcotest.fail "refused connection must be closed");
            close_in_noerr ic2;
            Protocol.write_request oc1 Protocol.Shutdown;
            (match Protocol.read_response ic1 with
            | Ok Protocol.Bye -> ()
            | _ -> Alcotest.fail "expected bye");
            close_out_noerr oc1;
            close_in_noerr ic1;
            Domain.join listener;
            Alcotest.(check bool) "refusal logged" true
              (List.exists (fun l -> contains l "connection refused") (logs ()));
            Alcotest.(check int) "every descriptor returned" before (count_fds ())));
    Alcotest.test_case "an idle connection is reaped" `Quick (fun () ->
        let config = { Server.default_config with Server.idle_timeout_ms = Some 50 } in
        let server = Result.get_ok (Server.create ~config ~source ~manifest ()) in
        Fun.protect
          ~finally:(fun () -> Server.destroy server)
          (fun () ->
            let (), outcome =
              raw_connection server (fun ic oc ->
                  Protocol.write_request oc Protocol.Ping;
                  expect_pong ic;
                  (* Then go quiet: the server notices and says so. *)
                  let m = expect_error ic in
                  check_contains "reap names the cause" m "idle timeout")
            in
            Alcotest.(check bool) "connection dropped" true (outcome = `Disconnect);
            let client = Client.in_process server in
            Fun.protect
              ~finally:(fun () -> Client.close client)
              (fun () ->
                let st = Result.get_ok (Client.stats client) in
                Alcotest.(check int) "reap counted" 1 st.Protocol.st_idle_reaped)));
  ]

(* ---------------------------------------------------------------- *)
(* Client dial retry                                                  *)
(* ---------------------------------------------------------------- *)

let backoff_cases =
  [
    Alcotest.test_case "connect retries until the server shows up late" `Quick (fun () ->
        let socket_path = temp_socket_path () in
        let time = ref 0.0 in
        let now () = !time in
        let sleeps = ref [] in
        let listener = ref None in
        let sleep d =
          sleeps := d :: !sleeps;
          time := !time +. d;
          (* The server "starts" during the second backoff: a bound,
             listening socket is enough for connect to succeed (the
             connection parks in the backlog). *)
          if List.length !sleeps = 2 then begin
            let sock = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
            Unix.bind sock (Unix.ADDR_UNIX socket_path);
            Unix.listen sock 8;
            listener := Some sock
          end
        in
        Fun.protect
          ~finally:(fun () ->
            Option.iter (fun s -> try Unix.close s with Unix.Unix_error _ -> ()) !listener;
            try Sys.remove socket_path with Sys_error _ -> ())
          (fun () ->
            (* [`V1] skips the hello round-trip: a bound socket with no
               accept loop is enough for this transport-level test. *)
            match Client.connect ~protocol:`V1 ~retry_for:10.0 ~now ~sleep socket_path with
            | Error m -> Alcotest.failf "late server should be reachable: %s" m
            | Ok client ->
                Client.close client;
                Alcotest.(check int) "two backoffs before success" 2
                  (List.length !sleeps);
                List.iter
                  (fun d ->
                    Alcotest.(check bool) "delays bounded by the cap" true
                      (d > 0.0 && d <= 0.4))
                  !sleeps));
    Alcotest.test_case "connect gives up with the attempt count when no server exists"
      `Quick (fun () ->
        let path = Filename.concat (Filename.get_temp_dir_name ()) "cvld-never.sock" in
        (try Sys.remove path with Sys_error _ -> ());
        let time = ref 0.0 in
        let now () = !time in
        let sleeps = ref [] in
        let sleep d =
          sleeps := d :: !sleeps;
          time := !time +. d
        in
        (match Client.connect ~retry_for:0.5 ~now ~sleep path with
        | Ok _ -> Alcotest.fail "nothing is listening"
        | Error m ->
            check_contains "says how hard it tried" m "attempt";
            check_contains "names the socket" m path);
        Alcotest.(check bool) "it retried" true (List.length !sleeps >= 2);
        Alcotest.(check bool) "never slept past the deadline" true (!time <= 0.5 +. 1e-9);
        List.iter
          (fun d -> Alcotest.(check bool) "bounded delay" true (d > 0.0 && d <= 0.4))
          !sleeps;
        (* The default is one shot: no retry budget, no sleeps. *)
        let eager = ref 0 in
        (match Client.connect ~sleep:(fun _ -> incr eager) path with
        | Ok _ -> Alcotest.fail "nothing is listening"
        | Error m -> check_contains "single attempt" m "1 attempt");
        Alcotest.(check int) "no sleeps without a retry budget" 0 !eager);
  ]

(* ---------------------------------------------------------------- *)
(* Reader edge cases                                                  *)
(* ---------------------------------------------------------------- *)

let reader_edge_cases =
  [
    Alcotest.test_case "framing: zero-length, oversized, and mid-prefix EOF" `Quick
      (fun () ->
        let kind bytes = with_bytes bytes read_kind in
        (* Length 0 frames correctly — an empty payload is not JSON,
           but the stream stays synchronized. *)
        Alcotest.(check string) "zero length is recoverable" "bad-payload" (kind "0\n\n");
        with_bytes "0\n\n4\ntrue\n" (fun ic ->
            Alcotest.(check (list string))
              "reader resyncs after a zero-length frame"
              [ "bad-payload"; "msg"; "closed" ] (read_kinds ic 3));
        (* A length over the 512 MiB ceiling is rejected before any
           allocation: nobody trusts the declared payload. *)
        Alcotest.(check string) "oversized length" "truncated"
          (kind (Printf.sprintf "%d\nx\n" (600 * 1024 * 1024)));
        Alcotest.(check string) "absurd length" "truncated"
          (kind "999999999999999999999\n");
        (* EOF while the length prefix itself is incomplete. *)
        Alcotest.(check string) "EOF mid-prefix" "truncated" (kind "12");
        Alcotest.(check string) "EOF right after the prefix" "truncated" (kind "12\n");
        with_bytes "" (fun ic ->
            Alcotest.(check string) "empty stream is a clean close" "closed"
              (read_kind ic)));
  ]

(* ---------------------------------------------------------------- *)
(* Protocol v2: binary codec, handshake, deltas, fuzz                *)
(* ---------------------------------------------------------------- *)

module V2 = Protocol.V2

(* A verdict corpus with heavy string repetition — the shape interning
   exists for. Every 5th verdict has no evidence, so both payload
   sizes appear. *)
let v2_verdict i =
  {
    Protocol.v_entity = "sshd";
    v_frame = Printf.sprintf "host-%d" (i mod 2);
    v_rule = Printf.sprintf "Rule%d" (i mod 3);
    v_verdict = (if i mod 2 = 0 then "matched" else "not-matched");
    v_detail = Printf.sprintf "detail %d" (i mod 4);
    v_evidence =
      (if i mod 5 = 0 then []
       else [ "/etc/ssh/sshd_config:12"; Printf.sprintf "line %d" (i mod 2) ]);
  }

let u32le n = String.init 4 (fun i -> Char.chr ((n lsr (8 * i)) land 0xff))
let v2_frame tag payload = Printf.sprintf "%c%s%s" tag (u32le (String.length payload)) payload

let dec_u32 s off =
  Char.code s.[off]
  lor (Char.code s.[off + 1] lsl 8)
  lor (Char.code s.[off + 2] lsl 16)
  lor (Char.code s.[off + 3] lsl 24)

(* Decode a byte string to the full read sequence: every client-visible
   frame, every [Bad] (the reader stays synchronized after one), and
   the terminating [Closed]/[Truncated]. *)
let v2_reads bytes =
  let rd = V2.reader () in
  let pos = ref 0 in
  let rec go acc =
    match V2.read_frame_string rd bytes pos with
    | V2.Closed -> List.rev (V2.Closed :: acc)
    | V2.Truncated m -> List.rev (V2.Truncated m :: acc)
    | r -> go (r :: acc)
  in
  go []

let v2_decoded_verdicts bytes =
  List.filter_map
    (function V2.Frame (V2.Verdict_frame v) -> Some (verdict_sig v) | _ -> None)
    (v2_reads bytes)

(* Frame-start offsets of a well-formed v2 byte string (intern frames
   included): a prefix cut exactly there is a clean close, anywhere
   else is a truncation. *)
let v2_boundaries bytes =
  let rec go p acc =
    if p >= String.length bytes then acc else go (p + 5 + dec_u32 bytes (p + 1)) (p :: acc)
  in
  go 0 []

let collect_stream f =
  let acc = ref [] in
  match f (fun v -> acc := verdict_sig v :: !acc) with
  | Error m -> Alcotest.failf "stream failed: %s" m
  | Ok s -> (List.rev !acc, s)

let v2_codec_cases =
  [
    Alcotest.test_case "v2 codec: verdicts round-trip, interning amortizes" `Quick (fun () ->
        let verdicts = List.init 40 v2_verdict in
        let w = V2.writer () in
        let buf = Buffer.create 1024 in
        let sizes =
          List.map
            (fun v ->
              let before = Buffer.length buf in
              V2.add_verdict w buf v;
              Buffer.length buf - before)
            verdicts
        in
        let bytes = Buffer.contents buf in
        Alcotest.(check sig_t)
          "decoded sequence is the input, in order"
          (List.map nest (List.map verdict_sig verdicts))
          (List.map nest (v2_decoded_verdicts bytes));
        (* The first verdict pays the intern definitions; once every
           string has crossed once, a verdict is pure ordinals:
           5-byte frame header + 24 bytes + 4 per evidence line. *)
        Alcotest.(check bool) "first verdict carries intern frames" true
          (List.hd sizes > 29 + (2 * 4));
        List.iteri
          (fun i size ->
            if i >= 20 then
              Alcotest.(check int)
                (Printf.sprintf "verdict %d is ordinals only" i)
                (if i mod 5 = 0 then 29 else 37)
                size)
          sizes);
    Alcotest.test_case "v2 codec: json, copy and epoch frames round-trip" `Quick (fun () ->
        let w = V2.writer () in
        let buf = Buffer.create 256 in
        let hdr =
          {
            V2.e_frame = "host-1";
            e_epoch = 3;
            e_baseline = 2;
            e_total = 170;
            e_added = 1;
            e_changed = 2;
            e_removed = 0;
            e_delta = true;
          }
        in
        V2.add_epoch w buf hdr;
        V2.add_copy buf ~start:5 ~count:120;
        V2.add_response w buf Protocol.Pong;
        V2.add_request w buf Protocol.Ping;
        match v2_reads (Buffer.contents buf) with
        | [ V2.Frame (V2.Epoch hdr');
            V2.Frame (V2.Copy { start = 5; count = 120 });
            V2.Frame (V2.Json pong);
            V2.Frame (V2.Json ping);
            V2.Closed ] ->
            Alcotest.(check bool) "epoch header round-trips" true (hdr' = hdr);
            Alcotest.(check bool) "pong decodes" true
              (Protocol.response_of_json pong = Ok Protocol.Pong);
            Alcotest.(check bool) "ping decodes" true
              (Protocol.request_of_json ping = Ok Protocol.Ping)
        | reads -> Alcotest.failf "unexpected read sequence (%d reads)" (List.length reads));
    Alcotest.test_case "v2 reader: corruption is Bad, framing loss is Truncated" `Quick
      (fun () ->
        let kinds bytes =
          List.map
            (function
              | V2.Frame _ -> "frame"
              | V2.Bad _ -> "bad"
              | V2.Truncated _ -> "truncated"
              | V2.Closed -> "closed")
            (v2_reads bytes)
        in
        (* Unknown tag: well-framed, so the reader skips exactly that
           frame and decodes the next one. *)
        let w = V2.writer () in
        let buf = Buffer.create 128 in
        Buffer.add_string buf (v2_frame 'Z' "abc");
        V2.add_verdict w buf (v2_verdict 0);
        (match v2_reads (Buffer.contents buf) with
        | [ V2.Bad _; V2.Frame (V2.Verdict_frame v); V2.Closed ] ->
            Alcotest.(check bool) "resynced onto the verdict" true
              (verdict_sig v = verdict_sig (v2_verdict 0))
        | _ -> Alcotest.fail "unknown tag must be Bad, then resync");
        (* Ordinals past the intern table: Bad, synchronized. *)
        let orphan = v2_frame 'V' (String.concat "" (List.map u32le [ 9; 9; 9; 9; 9; 0 ])) in
        Alcotest.(check (list string)) "orphan ordinal" [ "bad"; "closed" ] (kinds orphan);
        (* Payload sizes that cannot be what the tag claims: Bad. *)
        Alcotest.(check (list string)) "short verdict" [ "bad"; "closed" ]
          (kinds (v2_frame 'V' "tiny"));
        Alcotest.(check (list string)) "copy of the wrong size" [ "bad"; "closed" ]
          (kinds (v2_frame 'C' "123456789"));
        Alcotest.(check (list string)) "epoch of the wrong size" [ "bad"; "closed" ]
          (kinds (v2_frame 'E' "x"));
        Alcotest.(check (list string)) "json frame that is not JSON" [ "bad"; "closed" ]
          (kinds (v2_frame 'J' "not json!"));
        (* Broken framing: nobody knows where the next frame starts. *)
        Alcotest.(check (list string)) "oversized length" [ "truncated" ]
          (kinds ("V" ^ u32le (600 * 1024 * 1024)));
        Alcotest.(check (list string)) "EOF mid-header" [ "truncated" ] (kinds "V\x01");
        Alcotest.(check (list string)) "EOF mid-payload" [ "truncated" ]
          (kinds ("V" ^ u32le 24 ^ "abc"));
        Alcotest.(check (list string)) "empty stream is a clean close" [ "closed" ]
          (kinds ""));
    Alcotest.test_case "v2 reader: every truncation point classifies cleanly" `Quick
      (fun () ->
        let w = V2.writer () in
        let buf = Buffer.create 512 in
        List.iter (V2.add_verdict w buf) (List.init 6 v2_verdict);
        V2.add_copy buf ~start:0 ~count:3;
        let bytes = Buffer.contents buf in
        let boundaries = v2_boundaries bytes in
        for cut = 0 to String.length bytes - 1 do
          let reads = v2_reads (String.sub bytes 0 cut) in
          (* A pure truncation of valid frames never reads as payload
             corruption... *)
          List.iter
            (function
              | V2.Bad m -> Alcotest.failf "cut %d: classified Bad (%s)" cut m
              | _ -> ())
            reads;
          (* ...and ends Closed exactly at frame boundaries, Truncated
             everywhere else. *)
          let last = List.nth reads (List.length reads - 1) in
          let at_boundary = List.mem cut boundaries in
          match (last, at_boundary) with
          | V2.Closed, true | V2.Truncated _, false -> ()
          | V2.Closed, false -> Alcotest.failf "cut %d mid-frame read as clean EOF" cut
          | V2.Truncated _, true -> Alcotest.failf "cut %d at a boundary read as truncation" cut
          | _ -> Alcotest.failf "cut %d: stream did not terminate" cut
        done);
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~count:500 ~name:"v2 fuzz: random bytes never kill the reader"
         QCheck.(string_of_size Gen.(0 -- 200))
         (fun s ->
           let reads = v2_reads s in
           match List.nth reads (List.length reads - 1) with
           | V2.Closed | V2.Truncated _ -> true
           | _ -> false));
    QCheck_alcotest.to_alcotest
      (let corpus =
         let w = V2.writer () in
         let buf = Buffer.create 512 in
         List.iter (V2.add_verdict w buf) (List.init 8 v2_verdict);
         Buffer.contents buf
       in
       QCheck.Test.make ~count:300
         ~name:"v2 fuzz: a corrupted byte is classified, never an exception"
         QCheck.(pair (int_bound (String.length corpus - 1)) (int_bound 255))
         (fun (at, byte) ->
           let mangled = Bytes.of_string corpus in
           Bytes.set mangled at (Char.chr byte);
           let reads = v2_reads (Bytes.to_string mangled) in
           reads <> []
           &&
           match List.nth reads (List.length reads - 1) with
           | V2.Closed | V2.Truncated _ -> true
           | _ -> false));
  ]

let v2_session_cases =
  [
    Alcotest.test_case "handshake: auto upgrades, `V1 pins, `V2 demands" `Quick (fun () ->
        let server = make_server () in
        Fun.protect
          ~finally:(fun () -> Server.destroy server)
          (fun () ->
            let check_client protocol expect =
              let c = Client.in_process ~protocol server in
              Fun.protect
                ~finally:(fun () -> Client.close c)
                (fun () ->
                  Alcotest.(check int)
                    (Printf.sprintf "granted version (expect v%d)" expect)
                    expect (Client.version c);
                  Alcotest.(check (result unit string)) "ping works" (Ok ())
                    (Client.ping c))
            in
            check_client `Auto Protocol.binary_version;
            check_client `V2 Protocol.binary_version;
            check_client `V1 Protocol.json_version));
    Alcotest.test_case "v2 streams and deltas reassemble byte-identical to v1" `Slow
      (fun () ->
        let f = Scenarios.Host.compliant () in
        let f' = broken_host () in
        (* One server per client: server-side revalidation snapshots are
           shared state, and the comparison needs both protocols to walk
           the identical validate → revalidate → revalidate history. *)
        let server1 = make_server () in
        let server2 = make_server () in
        let c1 = Client.in_process ~protocol:`V1 server1 in
        let c2 = Client.in_process server2 in
        Fun.protect
          ~finally:(fun () ->
            Client.close c1;
            Client.close c2;
            Server.destroy server1;
            Server.destroy server2)
          (fun () ->
            Alcotest.(check int) "c2 negotiated the binary protocol"
              Protocol.binary_version (Client.version c2);
            (* Full validate: v2 decodes to the exact v1 stream, and its
               epoch header announces a retainable full stream. *)
            let v1_full, _ =
              collect_stream (fun k ->
                  Client.validate c1 ~on_verdict:k (Protocol.job ~frames:[ f ] ()))
            in
            let streamed = ref [] in
            (match
               Client.stream_ex c2
                 (Protocol.Validate (Protocol.job ~frames:[ f ] ()))
                 ~on_verdict:(fun v -> streamed := verdict_sig v :: !streamed)
                 ~on_fresh:ignore
             with
            | Error m -> Alcotest.failf "v2 validate: %s" m
            | Ok (_, None) -> Alcotest.fail "single-frame v2 validate must carry an epoch"
            | Ok (_, Some d) ->
                Alcotest.(check bool) "initial stream is full" true d.Client.d_full;
                Alcotest.(check int) "nothing spliced yet" 0 d.Client.d_copied;
                Alcotest.(check sig_t) "v2 validate decodes to the v1 stream"
                  (List.map nest v1_full)
                  (List.map nest (List.rev !streamed)));
            (* Drifted revalidate: v1 resends everything, v2 splices the
               unchanged verdicts from the connection baseline — and the
               reassembly is the same sequence. *)
            let v1_reval, _ =
              collect_stream (fun k -> Client.revalidate c1 ~on_verdict:k f')
            in
            let fresh = ref 0 in
            let streamed = ref [] in
            (match
               Client.revalidate_ex c2
                 ~on_fresh:(fun _ -> incr fresh)
                 ~on_verdict:(fun v -> streamed := verdict_sig v :: !streamed)
                 f'
             with
            | Error m -> Alcotest.failf "v2 revalidate: %s" m
            | Ok (_, None) -> Alcotest.fail "v2 revalidate must carry an epoch"
            | Ok (s, Some d) ->
                Alcotest.(check bool) "streamed as a delta" false d.Client.d_full;
                Alcotest.(check bool) "baseline verdicts were spliced" true
                  (d.Client.d_copied > 0);
                Alcotest.(check bool) "only the drift crossed the wire" true
                  (!fresh > 0 && !fresh < List.length v1_reval);
                Alcotest.(check int) "fresh + copied covers the stream"
                  (List.length v1_reval)
                  (d.Client.d_copied + !fresh);
                Alcotest.(check int) "summary counts the reassembled set"
                  (List.length v1_reval) s.Protocol.s_total;
                Alcotest.(check sig_t)
                  "delta reassembles the exact v1 revalidate stream"
                  (List.map nest v1_reval)
                  (List.map nest (List.rev !streamed)));
            (* ~full:true opts out of the delta but not the codec. *)
            let v1_reval2, _ =
              collect_stream (fun k -> Client.revalidate c1 ~on_verdict:k f')
            in
            let streamed = ref [] in
            (match
               Client.revalidate_ex c2 ~full:true
                 ~on_verdict:(fun v -> streamed := verdict_sig v :: !streamed)
                 f'
             with
            | Error m -> Alcotest.failf "v2 revalidate --full: %s" m
            | Ok (_, None) -> Alcotest.fail "full v2 revalidate must carry an epoch"
            | Ok (_, Some d) ->
                Alcotest.(check bool) "forced full" true d.Client.d_full;
                Alcotest.(check int) "no splices in a full stream" 0 d.Client.d_copied;
                Alcotest.(check sig_t) "full stream matches v1"
                  (List.map nest v1_reval2)
                  (List.map nest (List.rev !streamed)));
            (* A fresh connection has no baseline to delta against, even
               though the server retains the frame snapshot: the first
               revalidate streams full. *)
            let c3 = Client.in_process server2 in
            Fun.protect
              ~finally:(fun () -> Client.close c3)
              (fun () ->
                match Client.revalidate_ex c3 ~on_verdict:ignore f' with
                | Error m -> Alcotest.failf "reconnect revalidate: %s" m
                | Ok (_, None) -> Alcotest.fail "reconnect revalidate must carry an epoch"
                | Ok (_, Some d) ->
                    Alcotest.(check bool) "no baseline: full stream" true d.Client.d_full)));
    Alcotest.test_case "watch under v2 delivers delta savings" `Quick (fun () ->
        let f = Scenarios.Host.compliant () in
        let f' = broken_host () in
        let snapshots = ref [ f; f'; f ] in
        let load () =
          match !snapshots with
          | [] -> Ok f
          | [ last ] -> Ok last
          | s :: rest ->
              snapshots := rest;
              Ok s
        in
        let polls = ref 0 in
        let sleep () =
          incr polls;
          !polls <= 10
        in
        let deltas = ref [] in
        let fresh = ref 0 in
        let total = ref 0 in
        let server = make_server () in
        let client = Client.in_process server in
        Fun.protect
          ~finally:(fun () ->
            Client.close client;
            Server.destroy server)
          (fun () ->
            match
              Client.watch client ~load ~sleep ~max_events:2
                ~on_verdict:(fun _ -> incr total)
                ~on_fresh:(fun _ -> incr fresh)
                ~on_event:(fun _ d -> deltas := d :: !deltas)
                ()
            with
            | Error m -> Alcotest.failf "watch: %s" m
            | Ok n ->
                Alcotest.(check int) "two change events" 2 n;
                Alcotest.(check int) "both events were deltas" 2
                  (List.length
                     (List.filter
                        (function Some d -> not d.Client.d_full | None -> false)
                        !deltas));
                Alcotest.(check bool) "most verdicts never crossed the wire" true
                  (!fresh > 0 && !fresh < !total / 2)));
    Alcotest.test_case "stats: per-protocol connections, bytes and delta splices" `Quick
      (fun () ->
        let f = Scenarios.Host.compliant () in
        let f' = broken_host () in
        let server = make_server () in
        Fun.protect
          ~finally:(fun () -> Server.destroy server)
          (fun () ->
            (* A v1 session is tallied when it closes un-upgraded. *)
            let c1 = Client.in_process ~protocol:`V1 server in
            Alcotest.(check (result unit string)) "v1 ping" (Ok ()) (Client.ping c1);
            Client.close c1;
            let c2 = Client.in_process server in
            Fun.protect
              ~finally:(fun () -> Client.close c2)
              (fun () ->
                let (_ : Protocol.summary) =
                  Result.get_ok
                    (Client.validate c2 ~on_verdict:ignore (Protocol.job ~frames:[ f ] ()))
                in
                let (_ : Protocol.summary) =
                  Result.get_ok (Client.revalidate c2 ~on_verdict:ignore f')
                in
                let st = Result.get_ok (Client.stats c2) in
                Alcotest.(check int) "one v1 connection closed" 1
                  st.Protocol.st_v1_connections;
                Alcotest.(check int) "one v2 connection negotiated" 1
                  st.Protocol.st_v2_connections;
                Alcotest.(check bool) "v1 bytes were written" true
                  (st.Protocol.st_v1_bytes_out > 0);
                Alcotest.(check bool) "v2 bytes were written" true
                  (st.Protocol.st_v2_bytes_out > 0);
                Alcotest.(check int) "one delta stream served" 1
                  st.Protocol.st_delta_streams;
                Alcotest.(check bool) "splices counted" true
                  (st.Protocol.st_delta_copied > 0))));
    Alcotest.test_case "v2 garbage and vanishing peers leave the listener serving" `Slow
      (fun () ->
        let f = Scenarios.Host.compliant () in
        let rules = Result.get_ok (Cvl.Validator.load_rules ~source ~manifest) in
        let reference = one_shot_signature ~rules ~chaos:None [ f ] in
        let server, _logs = make_logged_server () in
        let socket_path = temp_socket_path () in
        let listener = Domain.spawn (fun () -> Server.listen server ~socket_path) in
        let hello =
          Protocol.frame_bytes
            (Protocol.request_to_json (Protocol.Hello { version = Protocol.binary_version }))
        in
        (* Dial raw, upgrade by hand, then feed the server v2 wire
           garbage: a Bad frame must be answered (in v2 framing) on a
           connection that stays usable; broken framing and vanishing
           peers must cost only that connection. *)
        let upgraded () =
          let fd = dial socket_path in
          let ic = Unix.in_channel_of_descr fd in
          write_all fd hello;
          (match Protocol.read_response ic with
          | Ok (Protocol.Welcome { version }) when version = Protocol.binary_version -> ()
          | Ok _ | Error _ -> Alcotest.fail "handshake did not grant v2");
          (fd, ic)
        in
        let clean_check label =
          match Client.connect ~retry_for:5.0 socket_path with
          | Error m -> Alcotest.failf "%s: %s" label m
          | Ok c ->
              Fun.protect
                ~finally:(fun () -> Client.close c)
                (fun () ->
                  Alcotest.(check int)
                    (label ^ ": clean client negotiates v2")
                    Protocol.binary_version (Client.version c);
                  let streamed, _ =
                    collect_stream (fun k ->
                        Client.validate c ~on_verdict:k (Protocol.job ~frames:[ f ] ()))
                  in
                  Alcotest.(check sig_t)
                    (label ^ ": byte-identical to the one-shot run")
                    (List.map nest reference) (List.map nest streamed))
        in
        Fun.protect
          ~finally:(fun () -> Server.destroy server)
          (fun () ->
            clean_check "warmup";
            (* Well-framed garbage: answered, connection survives. *)
            let fd, ic = upgraded () in
            write_all fd
              (v2_frame 'V' (String.concat "" (List.map u32le [ 9; 9; 9; 9; 9; 0 ])));
            let rd = V2.reader () in
            (match V2.read_frame rd ic with
            | V2.Frame (V2.Json j) -> (
                match Protocol.response_of_json j with
                | Ok (Protocol.Error_reply m) ->
                    check_contains "error names the bad frame" m "ordinal"
                | Ok _ | Error _ -> Alcotest.fail "expected a v2-framed error reply")
            | _ -> Alcotest.fail "expected a v2-framed reply");
            let w = V2.writer () in
            let buf = Buffer.create 64 in
            V2.add_request w buf Protocol.Ping;
            write_all fd (Buffer.contents buf);
            (match V2.read_frame rd ic with
            | V2.Frame (V2.Json j) when Protocol.response_of_json j = Ok Protocol.Pong -> ()
            | _ -> Alcotest.fail "connection unusable after a Bad frame");
            close_in_noerr ic;
            (* Seeded fault plans over v2 request bytes: dribbled frames
               still answer; mid-frame hangups cost one connection. *)
            Buffer.clear buf;
            V2.add_request (V2.writer ()) buf
              (Protocol.Validate (Protocol.job ~frames:[ f ] ()));
            let request = Buffer.contents buf in
            List.iter
              (fun kind ->
                let fd, ic = upgraded () in
                let chunks, disposition = Faultsim.mangle kind request in
                List.iter (write_all fd) chunks;
                (match disposition with
                | `Keep_open ->
                    let rd = V2.reader () in
                    let rec drain n =
                      if n > 10_000 then Alcotest.fail "stream never ended"
                      else
                        match V2.read_frame rd ic with
                        | V2.Frame (V2.Json j) -> (
                            match Protocol.response_of_json j with
                            | Ok (Protocol.Summary _) -> ()
                            | Ok _ | Error _ -> Alcotest.fail "stream ended abnormally")
                        | V2.Frame _ -> drain (n + 1)
                        | V2.Bad m | V2.Truncated m ->
                            Alcotest.failf "dribbled stream broke: %s" m
                        | V2.Closed -> Alcotest.fail "dribbled stream closed early"
                    in
                    drain 0
                | `Close_now -> ());
                close_in_noerr ic)
              mangle_kinds;
            (* Truncated framing (a length the reader cannot trust). *)
            let fd, ic = upgraded () in
            write_all fd ("V" ^ u32le (600 * 1024 * 1024));
            close_in_noerr ic;
            ignore fd;
            (* Invariant: the listener still serves clean v2 streams. *)
            clean_check "aftermath";
            let shutdown = Result.get_ok (Client.connect ~retry_for:5.0 socket_path) in
            let st = Result.get_ok (Client.stats shutdown) in
            Alcotest.(check bool) "wire damage was counted" true
              (st.Protocol.st_protocol_errors > 0);
            Alcotest.(check bool) "v2 sessions tallied" true
              (st.Protocol.st_v2_connections >= 5);
            Alcotest.(check (result unit string)) "graceful shutdown" (Ok ())
              (Client.shutdown shutdown);
            Client.close shutdown;
            Domain.join listener;
            Alcotest.(check bool) "socket removed" false (Sys.file_exists socket_path)));
  ]

let suite =
  protocol_cases @ reader_edge_cases @ v2_codec_cases @ differential_cases
  @ containment_cases @ lifecycle_cases @ deadline_cases @ concurrent_cases
  @ listener_cases @ backoff_cases @ v2_session_cases
