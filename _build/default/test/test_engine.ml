open Cvl

(* A small synthetic entity: one sshd-style file and one fstab table. *)
let frame content =
  Frames.Frame.add_files
    (Frames.Frame.create ~id:"t" Frames.Frame.Host)
    [ Frames.File.make ~mode:0o600 ~content "/etc/ssh/sshd_config" ]

let ctx ?(entity = "sshd") content =
  Engine.build_ctx (frame content)
    {
      Manifest.entity;
      enabled = true;
      search_paths = [ "/etc/ssh" ];
      cvl_file = "unused";
      lens = Some "sshd";
      rule_type = None;
      flaky_plugins = [];
    }

let tree_rule ?(paths = [ "" ]) ?preferred ?non_preferred ?(not_present_pass = false)
    ?(check_presence_only = false) ?(require = []) ?(file_context = []) ?value_separator
    ?(case_insensitive = false) name =
  Rule.Tree
    {
      Rule.tree_common = Rule.common name;
      config_paths = paths;
      preferred;
      non_preferred;
      file_context;
      require_other_configs = require;
      value_separator;
      case_insensitive;
      check_presence_only;
      not_present_pass;
    }

let expect_verdict name rule content expected =
  Alcotest.test_case name `Quick (fun () ->
      let r = Engine.eval_rule (ctx content) rule in
      Alcotest.(check string) "verdict" (Engine.verdict_to_string expected)
        (Engine.verdict_to_string r.Engine.verdict))

let exact values = { Rule.values; match_spec = Matcher.default }

let tree_cases =
  [
    expect_verdict "preferred matches"
      (tree_rule ~preferred:(exact [ "no" ]) "PermitRootLogin")
      "PermitRootLogin no\n" Engine.Matched;
    expect_verdict "preferred mismatch"
      (tree_rule ~preferred:(exact [ "no" ]) "PermitRootLogin")
      "PermitRootLogin yes\n" Engine.Not_matched;
    expect_verdict "absent key"
      (tree_rule ~preferred:(exact [ "no" ]) "PermitRootLogin")
      "Port 22\n" Engine.Not_present;
    expect_verdict "absent key with not_present_pass"
      (tree_rule ~preferred:(exact [ "no" ]) ~not_present_pass:true "X11Forwarding")
      "Port 22\n" Engine.Matched;
    expect_verdict "non-preferred trumps preferred"
      (tree_rule ~preferred:(exact [ "aes" ]) ~non_preferred:(exact [ "aes" ]) "Ciphers")
      "Ciphers aes\n" Engine.Not_matched;
    expect_verdict "repeated keys must all comply"
      (tree_rule ~preferred:(exact [ "22" ]) "Port")
      "Port 22\nPort 2222\n" Engine.Not_matched;
    expect_verdict "check_presence_only ignores value"
      (tree_rule ~check_presence_only:true "Banner")
      "Banner /anything\n" Engine.Matched;
    expect_verdict "require_other_configs gates the rule"
      (tree_rule ~preferred:(exact [ "x" ]) ~require:[ "NoSuchKey" ] "Port")
      "Port x\n" Engine.Not_applicable;
    expect_verdict "require_other_configs satisfied"
      (tree_rule ~preferred:(exact [ "x" ]) ~require:[ "Banner" ] "Port")
      "Port x\nBanner /etc/issue\n" Engine.Matched;
    expect_verdict "file_context excludes files"
      (tree_rule ~preferred:(exact [ "x" ]) ~file_context:[ "other.conf" ] "Port")
      "Port x\n" Engine.Not_applicable;
    expect_verdict "value separator splits before matching"
      (tree_rule
         ~non_preferred:{ Rule.values = [ "cbc" ]; match_spec = { Matcher.kind = Matcher.Substr; scope = Matcher.Any } }
         ~value_separator:"," "Ciphers")
      "Ciphers aes256-ctr,aes128-cbc\n" Engine.Not_matched;
    expect_verdict "case-insensitive matching"
      (tree_rule ~case_insensitive:true ~preferred:(exact [ "off" ]) "Setting")
      "Setting OFF\n" Engine.Matched;
    expect_verdict "disabled rules are not applicable"
      (match tree_rule ~preferred:(exact [ "no" ]) "PermitRootLogin" with
       | Rule.Tree r ->
         Rule.Tree { r with Rule.tree_common = { r.Rule.tree_common with Rule.disabled = true } }
       | r -> r)
      "PermitRootLogin yes\n" Engine.Not_applicable;
  ]

let path_rule ?(should_exist = true) ?ownership ?permission ?file_type path =
  Rule.Path
    { Rule.path_common = Rule.common path; path; ownership; permission; should_exist; file_type }

let path_cases =
  [
    expect_verdict "path exists with sane mode"
      (path_rule ~ownership:"0:0" ~permission:0o600 "/etc/ssh/sshd_config")
      "x\n" Engine.Matched;
    expect_verdict "stricter mode passes a ceiling"
      (path_rule ~permission:0o644 "/etc/ssh/sshd_config")
      "x\n" Engine.Matched;
    expect_verdict "missing path"
      (path_rule "/etc/nope") "x\n" Engine.Not_present;
    expect_verdict "must-not-exist violated"
      (path_rule ~should_exist:false "/etc/ssh/sshd_config")
      "x\n" Engine.Not_matched;
    expect_verdict "must-not-exist satisfied"
      (path_rule ~should_exist:false "/etc/nope") "x\n" Engine.Matched;
    expect_verdict "wrong ownership"
      (path_rule ~ownership:"33:33" "/etc/ssh/sshd_config")
      "x\n" Engine.Not_matched;
    expect_verdict "wrong type"
      (path_rule ~file_type:"directory" "/etc/ssh/sshd_config")
      "x\n" Engine.Not_matched;
    Alcotest.test_case "mode ceiling is bitwise" `Quick (fun () ->
        (* 0o606 has a world-write... no: 606 = rw- --- rw-. Under a 644
           ceiling the 002 bit exceeds it even though 606 < 644
           numerically. *)
        let fr =
          Frames.Frame.add_files
            (Frames.Frame.create ~id:"t" Frames.Frame.Host)
            [ Frames.File.make ~mode:0o606 ~content:"" "/etc/f" ]
        in
        let ctx =
          Engine.ctx_of_documents ~entity:"x" fr [ ("/etc/f", Lenses.Lens.Tree []) ]
        in
        let r = Engine.eval_rule ctx (path_rule ~permission:0o644 "/etc/f") in
        Alcotest.(check string) "verdict" "not-matched" (Engine.verdict_to_string r.Engine.verdict));
  ]

let schema_rule ?(constraints = "") ?(values = []) ?(columns = [ "*" ]) ?preferred ?non_preferred
    ?expect_rows name =
  Rule.Schema
    {
      Rule.schema_common = Rule.common name;
      query_constraints = constraints;
      query_constraints_value = values;
      query_columns = columns;
      schema_preferred = preferred;
      schema_non_preferred = non_preferred;
      schema_file_context = [];
      expect_rows;
    }

let fstab_ctx content =
  let fr =
    Frames.Frame.add_files
      (Frames.Frame.create ~id:"t" Frames.Frame.Host)
      [ Frames.File.make ~content "/etc/fstab" ]
  in
  Engine.build_ctx fr
    {
      Manifest.entity = "fstab";
      enabled = true;
      search_paths = [ "/etc/fstab" ];
      cvl_file = "unused";
      lens = Some "fstab";
      rule_type = None;
      flaky_plugins = [];
    }

let expect_schema name rule content expected =
  Alcotest.test_case name `Quick (fun () ->
      let r = Engine.eval_rule (fstab_ctx content) rule in
      Alcotest.(check string) "verdict" (Engine.verdict_to_string expected)
        (Engine.verdict_to_string r.Engine.verdict))

let schema_cases =
  [
    expect_schema "paper listing 3 on a separate /tmp"
      (schema_rule ~constraints:"dir = ?" ~values:[ "/tmp" ]
         ~non_preferred:{ Rule.values = [ "" ]; match_spec = { Matcher.kind = Matcher.Exact; scope = Matcher.All } }
         "check_tmp_separate_partition")
      "/dev/sda2 /tmp ext4 nodev 0 2\n" Engine.Matched;
    expect_schema "paper listing 3 without /tmp"
      (schema_rule ~constraints:"dir = ?" ~values:[ "/tmp" ]
         ~non_preferred:{ Rule.values = [ "" ]; match_spec = { Matcher.kind = Matcher.Exact; scope = Matcher.All } }
         "check_tmp_separate_partition")
      "/dev/sda1 / ext4 defaults 0 1\n" Engine.Not_matched;
    expect_schema "column projection with substring expectation"
      (schema_rule ~constraints:"dir = ?" ~values:[ "/tmp" ] ~columns:[ "options" ]
         ~preferred:{ Rule.values = [ "nodev" ]; match_spec = { Matcher.kind = Matcher.Substr; scope = Matcher.All } }
         "tmp_nodev")
      "/dev/sda2 /tmp ext4 nodev,nosuid 0 2\n" Engine.Matched;
    expect_schema "expect_rows unmet"
      (schema_rule ~constraints:"dir = ?" ~values:[ "/boot" ] ~expect_rows:1 "boot_partition")
      "/dev/sda1 / ext4 defaults 0 1\n" Engine.Not_matched;
    Alcotest.test_case "bad query surfaces as engine error" `Quick (fun () ->
        let r =
          Engine.eval_rule (fstab_ctx "/dev/sda1 / ext4 defaults 0 1\n")
            (schema_rule ~constraints:"nope ~ ?" ~values:[ "(" ] "bad-regex")
        in
        match r.Engine.verdict with
        | Engine.Engine_error _ -> ()
        | v -> Alcotest.failf "expected error, got %s" (Engine.verdict_to_string v));
  ]

let script_cases =
  [
    Alcotest.test_case "script rule over plugin output" `Quick (fun () ->
        let fr = Scenarios.Webstack.mysql_container_frame ~compliant:true in
        let ctx = Engine.ctx_of_documents ~entity:"mysql" fr [] in
        let rule =
          Rule.Script
            {
              Rule.script_common = Rule.common "have_ssl";
              plugin = "mysql_variables";
              script_config_paths = [ "have_ssl" ];
              script_preferred = Some { Rule.values = [ "YES" ]; match_spec = Matcher.default };
              script_non_preferred = None;
              script_not_present_pass = false;
              on_plugin_failure = None;
            }
        in
        let r = Engine.eval_rule ctx rule in
        Alcotest.(check string) "verdict" "matched" (Engine.verdict_to_string r.Engine.verdict));
    Alcotest.test_case "unknown plugin is an engine error" `Quick (fun () ->
        let ctx = Engine.ctx_of_documents ~entity:"x" (Frames.Frame.create ~id:"t" Frames.Frame.Host) [] in
        let rule =
          Rule.Script
            {
              Rule.script_common = Rule.common "r";
              plugin = "nope";
              script_config_paths = [ "k" ];
              script_preferred = None;
              script_non_preferred = None;
              script_not_present_pass = false;
              on_plugin_failure = None;
            }
        in
        match (Engine.eval_rule ctx rule).Engine.verdict with
        | Engine.Engine_error _ -> ()
        | v -> Alcotest.failf "expected error, got %s" (Engine.verdict_to_string v));
    Alcotest.test_case "plugin without data is not applicable" `Quick (fun () ->
        let ctx = Engine.ctx_of_documents ~entity:"x" (Frames.Frame.create ~id:"t" Frames.Frame.Host) [] in
        let rule =
          Rule.Script
            {
              Rule.script_common = Rule.common "r";
              plugin = "mysql_variables";
              script_config_paths = [ "k" ];
              script_preferred = None;
              script_non_preferred = None;
              script_not_present_pass = false;
              on_plugin_failure = None;
            }
        in
        Alcotest.(check string) "verdict" "not-applicable"
          (Engine.verdict_to_string (Engine.eval_rule ctx rule).Engine.verdict));
    Alcotest.test_case "composite handed to engine is an error" `Quick (fun () ->
        let ctx = Engine.ctx_of_documents ~entity:"x" (Frames.Frame.create ~id:"t" Frames.Frame.Host) [] in
        let rule = Rule.Composite { Rule.composite_common = Rule.common "c"; expression = "a.b" } in
        match (Engine.eval_rule ctx rule).Engine.verdict with
        | Engine.Engine_error _ -> ()
        | v -> Alcotest.failf "expected error, got %s" (Engine.verdict_to_string v));
  ]

let parse_error_case =
  Alcotest.test_case "unparsable config degrades to engine error" `Quick (fun () ->
      let fr =
        Frames.Frame.add_files
          (Frames.Frame.create ~id:"t" Frames.Frame.Host)
          [ Frames.File.make ~content:"http { unterminated\n" "/etc/nginx/nginx.conf" ]
      in
      let ctx =
        Engine.build_ctx fr
          {
            Manifest.entity = "nginx";
            enabled = true;
            search_paths = [ "/etc/nginx" ];
            cvl_file = "u";
            lens = Some "nginx";
            rule_type = None;
            flaky_plugins = [];
          }
      in
      let rule = tree_rule ~preferred:(exact [ "off" ]) "server_tokens" in
      match (Engine.eval_rule ctx rule).Engine.verdict with
      | Engine.Engine_error _ -> ()
      | v -> Alcotest.failf "expected error, got %s" (Engine.verdict_to_string v))

let suite = tree_cases @ path_cases @ schema_cases @ script_cases @ [ parse_error_case ]
