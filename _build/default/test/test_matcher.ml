open Cvl

let parse_cases =
  [
    Alcotest.test_case "parse kind,scope" `Quick (fun () ->
        Alcotest.(check string) "substr,all" "substr,all"
          (Matcher.to_string (Result.get_ok (Matcher.parse "substr,all")));
        Alcotest.(check string) "spaces tolerated" "regex,any"
          (Matcher.to_string (Result.get_ok (Matcher.parse " regex , any ")));
        Alcotest.(check string) "kind only" "substr,any"
          (Matcher.to_string (Result.get_ok (Matcher.parse "substr")));
        Alcotest.(check string) "scope only" "exact,all"
          (Matcher.to_string (Result.get_ok (Matcher.parse "all")));
        Alcotest.(check string) "empty is default" "exact,any"
          (Matcher.to_string (Result.get_ok (Matcher.parse ""))));
    Alcotest.test_case "parse errors" `Quick (fun () ->
        Alcotest.(check bool) "junk" true (Result.is_error (Matcher.parse "fuzzy,any"));
        Alcotest.(check bool) "three parts" true (Result.is_error (Matcher.parse "exact,any,x")));
  ]

let sat kind scope rule_values config_value =
  Matcher.satisfies { Matcher.kind; scope } ~rule_values ~config_value

let semantics_cases =
  [
    Alcotest.test_case "exact semantics" `Quick (fun () ->
        Alcotest.(check bool) "hit" true (sat Matcher.Exact Matcher.Any [ "no"; "maybe" ] "no");
        Alcotest.(check bool) "miss" false (sat Matcher.Exact Matcher.Any [ "no" ] "nope"));
    Alcotest.test_case "substr semantics" `Quick (fun () ->
        Alcotest.(check bool) "inside" true (sat Matcher.Substr Matcher.Any [ "SSLv3" ] "TLSv1.2 SSLv3");
        Alcotest.(check bool) "empty needle matches" true (sat Matcher.Substr Matcher.Any [ "" ] "x"));
    Alcotest.test_case "regex semantics" `Quick (fun () ->
        Alcotest.(check bool) "unanchored" true (sat Matcher.Regex Matcher.Any [ "v1\\.[23]" ] "TLSv1.2");
        Alcotest.(check bool) "anchors" false (sat Matcher.Regex Matcher.Any [ "^[1-4]$" ] "40");
        Alcotest.(check bool) "invalid regex never matches" false (sat Matcher.Regex Matcher.Any [ "(" ] "x"));
    Alcotest.test_case "all scope (paper listing 2)" `Quick (fun () ->
        Alcotest.(check bool) "both present" true
          (sat Matcher.Substr Matcher.All [ "TLSv1.2"; "TLSv1.3" ] "TLSv1.2 TLSv1.3");
        Alcotest.(check bool) "one missing" false
          (sat Matcher.Substr Matcher.All [ "TLSv1.2"; "TLSv1.3" ] "TLSv1.2"));
    Alcotest.test_case "empty rule values never satisfy" `Quick (fun () ->
        Alcotest.(check bool) "any" false (sat Matcher.Exact Matcher.Any [] "x");
        Alcotest.(check bool) "all" false (sat Matcher.Exact Matcher.All [] "x"));
    Alcotest.test_case "case insensitive option" `Quick (fun () ->
        Alcotest.(check bool) "ci" true
          (Matcher.value_matches ~case_insensitive:true Matcher.Exact ~rule_value:"Off" ~config_value:"OFF");
        Alcotest.(check bool) "cs" false
          (Matcher.value_matches Matcher.Exact ~rule_value:"Off" ~config_value:"OFF"));
  ]

(* Laws the mli documents. *)
let gen_values =
  QCheck.Gen.(
    pair
      (list_size (int_range 1 4) (string_size ~gen:(char_range 'a' 'd') (int_range 0 4)))
      (string_size ~gen:(char_range 'a' 'd') (int_range 0 8)))

let exact_implies_substr =
  QCheck.Test.make ~count:500 ~name:"exact match implies substr match"
    (QCheck.make
       ~print:(fun (vs, c) -> Printf.sprintf "[%s] / %s" (String.concat ";" vs) c)
       gen_values)
    (fun (rule_values, config_value) ->
      let exact k = sat Matcher.Exact k rule_values config_value in
      let substr k = sat Matcher.Substr k rule_values config_value in
      (not (exact Matcher.Any) || substr Matcher.Any)
      && (not (exact Matcher.All) || substr Matcher.All))

let all_implies_any =
  QCheck.Test.make ~count:500 ~name:"all scope implies any scope"
    (QCheck.make
       ~print:(fun (vs, c) -> Printf.sprintf "[%s] / %s" (String.concat ";" vs) c)
       gen_values)
    (fun (rule_values, config_value) ->
      List.for_all
        (fun kind ->
          not (sat kind Matcher.All rule_values config_value)
          || sat kind Matcher.Any rule_values config_value)
        [ Matcher.Exact; Matcher.Substr ])

let suite =
  parse_cases @ semantics_cases
  @ [ QCheck_alcotest.to_alcotest exact_implies_substr; QCheck_alcotest.to_alcotest all_implies_any ]
