let checks = Checkir.Cis40.all

let ir_cases =
  [
    Alcotest.test_case "exactly 40 common checks" `Quick (fun () ->
        Alcotest.(check int) "count" 40 (List.length checks));
    Alcotest.test_case "check ids unique" `Quick (fun () ->
        let ids = List.map (fun (c : Checkir.Check.t) -> c.Checkir.Check.id) checks in
        Alcotest.(check int) "unique" 40 (List.length (List.sort_uniq compare ids)));
    Alcotest.test_case "reference semantics on the scenario hosts" `Quick (fun () ->
        let good = Scenarios.Host.compliant () and bad = Scenarios.Host.misconfigured () in
        Alcotest.(check int) "good failures" 0
          (List.length (List.filter (fun c -> not (Checkir.Check.holds good c)) checks));
        Alcotest.(check int) "bad failures" 15
          (List.length (List.filter (fun c -> not (Checkir.Check.holds bad c)) checks)));
    Alcotest.test_case "key_values extraction" `Quick (fun () ->
        let lines = [ "PermitRootLogin no"; "Port 22"; "Port 2222"; "Foo=1" ] in
        Alcotest.(check (list string)) "space" [ "no" ]
          (Checkir.Check.key_values ~sep:Checkir.Check.Space ~key:"PermitRootLogin" lines);
        Alcotest.(check (list string)) "repeats" [ "22"; "2222" ]
          (Checkir.Check.key_values ~sep:Checkir.Check.Space ~key:"Port" lines);
        Alcotest.(check (list string)) "equals" [ "1" ]
          (Checkir.Check.key_values ~sep:Checkir.Check.Equals ~key:"Foo" lines);
        (* Key prefixes must not match. *)
        Alcotest.(check (list string)) "no prefix capture" []
          (Checkir.Check.key_values ~sep:Checkir.Check.Space ~key:"Perm" lines));
  ]

(* Cross-engine agreement: every adapter must agree with the reference
   semantics, check by check, on both hosts. *)
let agreement_case name verdicts_of =
  Alcotest.test_case (name ^ " agrees with reference semantics") `Quick (fun () ->
      List.iter
        (fun frame ->
          let verdicts = verdicts_of frame in
          List.iter
            (fun (c : Checkir.Check.t) ->
              let reference = Checkir.Check.holds frame c in
              match List.assoc_opt c.Checkir.Check.id verdicts with
              | Some v when v = reference -> ()
              | Some v ->
                Alcotest.failf "%s: %s says %b, reference %b" c.Checkir.Check.id name v reference
              | None -> Alcotest.failf "%s: missing from %s" c.Checkir.Check.id name)
            checks)
        [ Scenarios.Host.compliant (); Scenarios.Host.misconfigured () ])

let oval_verdicts frame =
  let doc = Scap.Oval.of_checks checks in
  (* Exercise the full serialize/parse path, not just the in-memory doc. *)
  let doc = Result.get_ok (Scap.Oval.parse (Scap.Oval.to_xml doc)) in
  Scap.Oval.evaluate doc frame
  |> List.map (fun (def_id, ok) ->
         (* oval:<check id>:def:1 *)
         let id = String.sub def_id 5 (String.length def_id - 5 - 6) in
         (id, ok))

let xccdf_verdicts frame =
  let benchmark_xml = Scap.Xccdf.to_xml (Scap.Xccdf.of_checks ~id:"cis40" checks) in
  let oval_xml = Scap.Oval.to_xml (Scap.Oval.of_checks checks) in
  match Scap.Xccdf.run ~benchmark_xml ~oval_xml frame with
  | Ok results ->
    let prefix = "xccdf_org.cis.content_rule_" in
    List.map
      (fun (rid, ok) -> (String.sub rid (String.length prefix) (String.length rid - String.length prefix), ok))
      results
  | Error e -> Alcotest.fail e

let inspec_dsl_verdicts frame =
  List.map
    (fun (c : Checkir.Check.t) ->
      (c.Checkir.Check.id, Inspeclite.Dsl.run_control frame (Inspeclite.Engine.to_dsl c)))
    checks

let agreement_cases =
  [
    agreement_case "oval" oval_verdicts;
    agreement_case "confvalley cpl" (fun frame -> Confvalley.Cpl.run_checks frame checks);
    agreement_case "xccdf+oval (openscap path)" xccdf_verdicts;
    agreement_case "inspec observed (bash)" (fun frame -> Inspeclite.Engine.run frame checks);
    agreement_case "inspec expected (dsl)" inspec_dsl_verdicts;
    agreement_case "ciscat (oval + startup)" (fun frame ->
        let benchmark_xml = Scap.Xccdf.to_xml (Scap.Xccdf.of_checks ~id:"cis40" checks) in
        let oval_xml = Scap.Oval.to_xml (Scap.Oval.of_checks checks) in
        match Scap.Ciscat.run ~startup_units:1 ~benchmark_xml ~oval_xml frame with
        | Ok results ->
          let prefix = "xccdf_org.cis.content_rule_" in
          List.map
            (fun (rid, ok) ->
              (String.sub rid (String.length prefix) (String.length rid - String.length prefix), ok))
            results
        | Error e -> Alcotest.fail e);
  ]

let bash_cases =
  [
    Alcotest.test_case "bash emulator pipelines" `Quick (fun () ->
        let frame = Scenarios.Host.compliant () in
        let run cmd = Inspeclite.Bash_emu.run frame cmd in
        Alcotest.(check string) "grep + head"
          "PermitRootLogin no"
          (run "grep '^\\s*PermitRootLogin\\s' /etc/ssh/sshd_config | head -1");
        Alcotest.(check string) "wc -l" "1" (run "grep 'Banner' /etc/ssh/sshd_config | wc -l");
        Alcotest.(check string) "missing file" "" (run "grep 'x' /nonexistent");
        Alcotest.(check string) "stat" "600 0:0" (run "stat -c '%a %u:%g' /etc/ssh/sshd_config");
        Alcotest.(check string) "cut" "root" (run "grep '^root:' /etc/passwd | cut -d: -f1");
        Alcotest.(check string) "echo" "hi there" (run "echo hi there"));
    Alcotest.test_case "bash emulator quoting" `Quick (fun () ->
        Alcotest.(check (list string)) "split" [ "grep"; "a b"; "/f" ]
          (Inspeclite.Bash_emu.split_args "grep 'a b' /f"));
  ]

let render_cases =
  [
    Alcotest.test_case "listing 6 relative spec sizes" `Quick (fun () ->
        (* 45 lines XCCDF/OVAL vs 10 CVL vs 6-7 InSpec for
           PermitRootLogin: our generators must preserve the ordering
           and rough ratios. *)
        let check = Checkir.Cis40.permit_root_login in
        let count s = List.length (List.filter (fun l -> String.trim l <> "") (String.split_on_char '\n' s)) in
        let xccdf = count (Scap.Xccdf.rule_to_xml check) in
        let cvl = count (Checkir.To_cvl.rule check) in
        let inspec_expected = count (Inspeclite.Render.expected check) in
        let inspec_observed = count (Inspeclite.Render.observed check) in
        Alcotest.(check bool) "xccdf largest" true (xccdf > 2 * cvl);
        Alcotest.(check bool) "cvl around ten" true (cvl >= 8 && cvl <= 12);
        Alcotest.(check bool) "inspec smallest" true (inspec_expected <= cvl && inspec_observed <= cvl));
    Alcotest.test_case "generated cvl for all 40 checks loads" `Quick (fun () ->
        let manifest_yaml, rule_files = Checkir.To_cvl.bundle checks in
        let manifest = Cvl.Manifest.parse_exn manifest_yaml in
        let source = Cvl.Loader.assoc_source rule_files in
        List.iter
          (fun (entry : Cvl.Manifest.entry) ->
            match Cvl.Manifest.load_rules source entry with
            | Ok _ -> ()
            | Error e -> Alcotest.failf "%s: %s" entry.Cvl.Manifest.entity e)
          manifest);
    Alcotest.test_case "generated inspec profile mentions every control" `Quick (fun () ->
        let profile = Inspeclite.Render.profile ~style:`Observed checks in
        List.iter
          (fun (c : Checkir.Check.t) ->
            if not (Re.execp (Re.compile (Re.str c.Checkir.Check.id)) profile) then
              Alcotest.failf "%s missing from profile" c.Checkir.Check.id)
          checks);
    Alcotest.test_case "generated oval parses back identically" `Quick (fun () ->
        let doc = Scap.Oval.of_checks checks in
        let doc' = Result.get_ok (Scap.Oval.parse (Scap.Oval.to_xml doc)) in
        Alcotest.(check int) "definitions" (List.length doc.Scap.Oval.definitions)
          (List.length doc'.Scap.Oval.definitions);
        Alcotest.(check int) "tests" (List.length doc.Scap.Oval.tests)
          (List.length doc'.Scap.Oval.tests));
    Alcotest.test_case "xccdf benchmark parses back with selections" `Quick (fun () ->
        let xml = Scap.Xccdf.to_xml (Scap.Xccdf.of_checks ~id:"cis40" checks) in
        let b = Result.get_ok (Scap.Xccdf.parse xml) in
        Alcotest.(check int) "rules" 40 (List.length b.Scap.Xccdf.rules);
        Alcotest.(check bool) "all selected" true
          (List.for_all (fun (r : Scap.Xccdf.rule) -> r.Scap.Xccdf.selected) b.Scap.Xccdf.rules));
  ]

let cpl_cases =
  [
    Alcotest.test_case "cpl render/parse roundtrip on the 40-check program" `Quick (fun () ->
        let program, spans = Confvalley.Cpl.of_checks checks in
        let text = Confvalley.Cpl.render program in
        match Confvalley.Cpl.parse text with
        | Error e -> Alcotest.fail e
        | Ok program' ->
          Alcotest.(check string) "roundtrip" text (Confvalley.Cpl.render program');
          Alcotest.(check int) "one span per check" 40 (List.length spans));
    Alcotest.test_case "cpl evaluates a hand-written program" `Quick (fun () ->
        let text =
          "# hardening profile\n\
           let sshd = file(\"/etc/ssh/sshd_config\", kv_space)\n\
           assert sshd[\"PermitRootLogin\"] == \"no\"\n\
           assert exists sshd[\"Banner\"]\n\
           assert if_present sshd[\"X11Forwarding\"] == \"no\"\n\
           assert mode(\"/etc/ssh/sshd_config\") <= 600\n"
        in
        let program = Result.get_ok (Confvalley.Cpl.parse text) in
        Alcotest.(check (list bool)) "good host" [ true; true; true; true ]
          (Confvalley.Cpl.eval (Scenarios.Host.compliant ()) program);
        Alcotest.(check (list bool)) "bad host" [ false; false; false; false ]
          (Confvalley.Cpl.eval (Scenarios.Host.misconfigured ()) program));
    Alcotest.test_case "cpl parse errors carry line numbers" `Quick (fun () ->
        (match Confvalley.Cpl.parse "let x = file(\"/a\", kv_space)\nassert nonsense here\n" with
        | Error e ->
          Alcotest.(check bool) "line 2" true (Re.execp (Re.compile (Re.str "line 2")) e)
        | Ok _ -> Alcotest.fail "expected error");
        Alcotest.(check bool) "duplicate binding" true
          (Result.is_error
             (Confvalley.Cpl.parse
                "let x = file(\"/a\", kv_space)\nlet x = file(\"/b\", lines)\n"));
        Alcotest.(check bool) "unknown format" true
          (Result.is_error (Confvalley.Cpl.parse "let x = file(\"/a\", toml)\n")));
    Alcotest.test_case "cpl unknown binding fails closed" `Quick (fun () ->
        let program =
          Result.get_ok (Confvalley.Cpl.parse "assert ghost[\"key\"] == \"v\"\n")
        in
        Alcotest.(check (list bool)) "false" [ false ]
          (Confvalley.Cpl.eval (Scenarios.Host.compliant ()) program));
  ]

let suite = ir_cases @ agreement_cases @ bash_cases @ render_cases @ cpl_cases
