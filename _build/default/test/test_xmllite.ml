open Xmllite

let parse_ok name input f =
  Alcotest.test_case name `Quick (fun () ->
      match parse input with
      | Ok root -> f root
      | Error e -> Alcotest.fail (error_to_string e))

let parse_err name input =
  Alcotest.test_case name `Quick (fun () ->
      match parse input with
      | Ok _ -> Alcotest.fail "expected parse error"
      | Error _ -> ())

let cases =
  [
    parse_ok "simple element" "<a/>" (fun r -> Alcotest.(check string) "tag" "a" r.tag);
    parse_ok "attributes" {|<a x="1" y='two'/>|} (fun r ->
        Alcotest.(check (option string)) "x" (Some "1") (attr "x" r);
        Alcotest.(check (option string)) "y" (Some "two") (attr "y" r));
    parse_ok "text content with entities" "<a>x &lt;&amp;&gt; y</a>" (fun r ->
        Alcotest.(check string) "text" "x <&> y" (text r));
    parse_ok "numeric entity" "<a>&#65;&#x42;</a>" (fun r ->
        Alcotest.(check string) "text" "AB" (text r));
    parse_ok "nesting and find_all" "<a><b i='1'/><c/><b i='2'/></a>" (fun r ->
        Alcotest.(check int) "two b" 2 (List.length (find_all "b" r));
        Alcotest.(check (option string)) "second b" (Some "2")
          (attr "i" (List.nth (find_all "b" r) 1)));
    parse_ok "descendants" "<a><b><c/><b><c/></b></b></a>" (fun r ->
        Alcotest.(check int) "c count" 2 (List.length (descendants "c" r)));
    parse_ok "comments and PI skipped" "<?xml version=\"1.0\"?><!-- hi --><a><!-- in --><b/></a>"
      (fun r -> Alcotest.(check int) "children" 1 (List.length (elements r)));
    parse_ok "CDATA" "<a><![CDATA[<raw> & stuff]]></a>" (fun r ->
        Alcotest.(check string) "cdata" "<raw> & stuff" (text r));
    parse_ok "namespaced tags kept literal" "<ind:test xmlns:ind='x'><ind:object/></ind:test>"
      (fun r ->
        Alcotest.(check string) "tag" "ind:test" r.tag;
        Alcotest.(check int) "child" 1 (List.length (find_all "ind:object" r)));
    parse_ok "DOCTYPE skipped" "<!DOCTYPE html><a/>" (fun r -> Alcotest.(check string) "tag" "a" r.tag);
    parse_err "mismatched close" "<a><b></a></b>";
    parse_err "unterminated" "<a><b>";
    parse_err "trailing garbage" "<a/><b/>";
    parse_err "bad entity" "<a>&nope;</a>";
  ]

let print_roundtrip =
  Alcotest.test_case "to_string/parse roundtrip on a benchmark" `Quick (fun () ->
      let checks = Checkir.Cis40.all in
      let xml = Scap.Oval.to_xml (Scap.Oval.of_checks checks) in
      match parse xml with
      | Ok root ->
        Alcotest.(check string) "root" "oval_definitions" root.tag;
        Alcotest.(check int) "definitions" (List.length checks)
          (List.length (descendants "definition" root))
      | Error e -> Alcotest.fail (error_to_string e))

let hadoop_case =
  Alcotest.test_case "hadoop lens parses *-site.xml" `Quick (fun () ->
      let doc =
        "<?xml version=\"1.0\"?>\n<configuration>\n  <property>\n    <name>dfs.permissions.enabled</name>\n\
        \    <value>true</value>\n  </property>\n</configuration>"
      in
      match Lenses.Registry.parse ~lens_name:"hadoop" ~path:"hdfs-site.xml" doc with
      | Ok (Lenses.Lens.Tree forest) ->
        Alcotest.(check (list string)) "value" [ "true" ]
          (Configtree.Path.find_values_str forest "dfs.permissions.enabled")
      | Ok (Lenses.Lens.Table _) -> Alcotest.fail "expected a tree"
      | Error e -> Alcotest.fail e)

let suite = cases @ [ print_roundtrip; hadoop_case ]
