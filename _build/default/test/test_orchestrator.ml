open Cvl

let violations frame entity =
  let run = Validator.run ~source:Rulesets.source ~manifest:Rulesets.manifest [ frame ] in
  Report.violations run.Validator.results
  |> List.filter (fun (r : Engine.result) -> r.Engine.entity = entity)
  |> List.map (fun (r : Engine.result) -> (entity, Rule.name r.Engine.rule))
  |> List.sort_uniq compare

let expected entity =
  List.sort_uniq compare (List.filter (fun (e, _) -> e = entity) Scenarios.Orchestrator.injected_faults)

let detection_cases =
  [
    Alcotest.test_case "compose: compliant file is clean" `Quick (fun () ->
        Alcotest.(check (list (pair string string))) "no findings" []
          (violations (Scenarios.Orchestrator.compose_compliant ()) "compose"));
    Alcotest.test_case "compose: every injected fault is reported" `Quick (fun () ->
        Alcotest.(check (list (pair string string))) "faults" (expected "compose")
          (violations (Scenarios.Orchestrator.compose_misconfigured ()) "compose"));
    Alcotest.test_case "kubernetes: compliant manifest is clean" `Quick (fun () ->
        Alcotest.(check (list (pair string string))) "no findings" []
          (violations (Scenarios.Orchestrator.k8s_compliant ()) "kubernetes"));
    Alcotest.test_case "kubernetes: every injected fault is reported" `Quick (fun () ->
        Alcotest.(check (list (pair string string))) "faults" (expected "kubernetes")
          (violations (Scenarios.Orchestrator.k8s_misconfigured ()) "kubernetes"));
  ]

let lens_cases =
  [
    Alcotest.test_case "yaml lens: services wildcard addressing" `Quick (fun () ->
        let doc = "services:\n  web:\n    privileged: true\n  db:\n    restart: always\n" in
        match Lenses.Registry.parse ~lens_name:"yaml" ~path:"docker-compose.yml" doc with
        | Ok (Lenses.Lens.Tree forest) ->
          Alcotest.(check (list string)) "wildcard" [ "true" ]
            (Configtree.Path.find_values_str forest "services/*/privileged");
          Alcotest.(check (list string)) "restart" [ "always" ]
            (Configtree.Path.find_values_str forest "services/db/restart")
        | Ok _ -> Alcotest.fail "expected tree"
        | Error e -> Alcotest.fail e);
    Alcotest.test_case "yaml lens: k8s container lists become repeated sections" `Quick (fun () ->
        let doc =
          "spec:\n  containers:\n    - name: a\n      image: x\n    - name: b\n      image: y\n"
        in
        match Lenses.Registry.parse ~lens_name:"yaml" ~path:"pod.yaml" doc with
        | Ok (Lenses.Lens.Tree forest) ->
          Alcotest.(check (list string)) "both containers" [ "a"; "b" ]
            (Configtree.Path.find_values_str forest "spec/containers/name")
        | Ok _ -> Alcotest.fail "expected tree"
        | Error e -> Alcotest.fail e);
    Alcotest.test_case "yaml lens render stability" `Quick (fun () ->
        let lens = Option.get (Lenses.Registry.find "yaml") in
        let doc = "a: 1\nxs: [1, 2]\nm:\n  inner: true\n" in
        let n1 = Result.get_ok (lens.Lenses.Lens.parse ~filename:"x.yaml" doc) in
        let text = Option.get ((Option.get lens.Lenses.Lens.render) n1) in
        let n2 = Result.get_ok (lens.Lenses.Lens.parse ~filename:"x.yaml" text) in
        match (n1, n2) with
        | Lenses.Lens.Tree f1, Lenses.Lens.Tree f2 ->
          Alcotest.(check bool) "fixed point" true (List.equal Configtree.Tree.equal f1 f2)
        | _ -> Alcotest.fail "normal form changed");
  ]

let postgres_cases =
  [
    Alcotest.test_case "postgres: compliant server is clean" `Quick (fun () ->
        Alcotest.(check (list (pair string string))) "no findings" []
          (violations (Scenarios.Database.compliant ()) "postgres"));
    Alcotest.test_case "postgres: every injected fault is reported" `Quick (fun () ->
        Alcotest.(check (list (pair string string)))
          "faults"
          (List.sort_uniq compare Scenarios.Database.injected_faults)
          (violations (Scenarios.Database.misconfigured ()) "postgres"));
    Alcotest.test_case "postgres lens strips quotes and handles comments" `Quick (fun () ->
        match
          Lenses.Registry.parse ~lens_name:"postgres" ~path:"postgresql.conf"
            "listen_addresses = 'localhost'  # loopback only\nssl on\nwork_mem = 64MB\n"
        with
        | Ok (Lenses.Lens.Tree forest) ->
          Alcotest.(check (list string)) "quoted" [ "localhost" ]
            (Configtree.Path.find_values_str forest "listen_addresses");
          Alcotest.(check (list string)) "no equals spelling" [ "on" ]
            (Configtree.Path.find_values_str forest "ssl");
          Alcotest.(check (list string)) "plain" [ "64MB" ]
            (Configtree.Path.find_values_str forest "work_mem")
        | Ok _ -> Alcotest.fail "expected tree"
        | Error e -> Alcotest.fail e);
  ]

let appserver_cases =
  [
    Alcotest.test_case "apache: compliant config is clean" `Quick (fun () ->
        Alcotest.(check (list (pair string string))) "no findings" []
          (violations (Scenarios.Appserver.apache_compliant ()) "apache"));
    Alcotest.test_case "apache: every injected fault is reported" `Quick (fun () ->
        Alcotest.(check (list (pair string string)))
          "faults"
          (List.sort_uniq compare
             (List.filter (fun (e, _) -> e = "apache") Scenarios.Appserver.injected_faults))
          (violations (Scenarios.Appserver.apache_misconfigured ()) "apache"));
    Alcotest.test_case "hadoop: compliant config is clean" `Quick (fun () ->
        Alcotest.(check (list (pair string string))) "no findings" []
          (violations (Scenarios.Appserver.hadoop_compliant ()) "hadoop"));
    Alcotest.test_case "hadoop: every injected fault is reported" `Quick (fun () ->
        Alcotest.(check (list (pair string string)))
          "faults"
          (List.sort_uniq compare
             (List.filter (fun (e, _) -> e = "hadoop") Scenarios.Appserver.injected_faults))
          (violations (Scenarios.Appserver.hadoop_misconfigured ()) "hadoop"));
    Alcotest.test_case "every paper target has an exercised scenario" `Quick (fun () ->
        (* Each of the 11 Table 1 targets must report at least one
           violation somewhere across the misconfigured scenarios —
           i.e. no ruleset is dead weight. *)
        let frames =
          Scenarios.Deployment.three_tier ~compliant:false
          @ [
              Scenarios.Appserver.apache_misconfigured ();
              Scenarios.Appserver.hadoop_misconfigured ();
            ]
        in
        let run =
          Cvl.Validator.run ~source:Rulesets.source ~manifest:Rulesets.manifest frames
        in
        let violating_entities =
          Cvl.Report.violations run.Cvl.Validator.results
          |> List.map (fun (r : Cvl.Engine.result) -> r.Cvl.Engine.entity)
          |> List.sort_uniq compare
        in
        List.iter
          (fun entity ->
            if not (List.mem entity violating_entities) then
              Alcotest.failf "target %s has no exercised violations" entity)
          (Rulesets.applications @ Rulesets.system_services @ Rulesets.cloud_services));
  ]

let suite = detection_cases @ lens_cases @ postgres_cases @ appserver_cases
