let check_parse name input expected =
  Alcotest.test_case name `Quick (fun () ->
      let actual = Yamlite.Parse.string_exn input in
      if not (Yamlite.Value.equal actual expected) then
        Alcotest.failf "parsed %a, expected %a" Yamlite.Value.pp actual Yamlite.Value.pp expected)

let check_error name input =
  Alcotest.test_case name `Quick (fun () ->
      match Yamlite.Parse.string input with
      | Ok v -> Alcotest.failf "expected a parse error, got %a" Yamlite.Value.pp v
      | Error _ -> ())

open Yamlite.Value

let scalar_cases =
  [
    check_parse "plain string" "hello" (Str "hello");
    check_parse "integer" "42" (Int 42);
    check_parse "negative integer" "-7" (Int (-7));
    check_parse "float" "3.5" (Float 3.5);
    check_parse "true" "true" (Bool true);
    check_parse "False" "False" (Bool false);
    check_parse "null word" "null" Null;
    check_parse "tilde" "~" Null;
    check_parse "empty document" "" Null;
    check_parse "comment-only document" "# nothing here\n" Null;
    (* The CVL-motivated deviation: yes/no stay strings. *)
    check_parse "no stays a string" "no" (Str "no");
    check_parse "yes stays a string" "yes" (Str "yes");
    check_parse "version is not a float" "1.2.3" (Str "1.2.3");
    check_parse "double-quoted" {|"a # not comment"|} (Str "a # not comment");
    check_parse "single-quoted with escape" "'it''s'" (Str "it's");
    check_parse "dq escapes" {|"a\tb\nc"|} (Str "a\tb\nc");
  ]

let structure_cases =
  [
    check_parse "flat mapping" "a: 1\nb: two\n" (Map [ ("a", Int 1); ("b", Str "two") ]);
    check_parse "nested mapping" "outer:\n  inner: v\n" (Map [ ("outer", Map [ ("inner", Str "v") ]) ]);
    check_parse "block sequence" "- a\n- b\n" (List [ Str "a"; Str "b" ]);
    check_parse "sequence under key" "xs:\n  - 1\n  - 2\n" (Map [ ("xs", List [ Int 1; Int 2 ]) ]);
    check_parse "sequence at same indent as key" "xs:\n- 1\n- 2\n" (Map [ ("xs", List [ Int 1; Int 2 ]) ]);
    check_parse "flow sequence" "xs: [1, two, \"three\"]\n" (Map [ ("xs", List [ Int 1; Str "two"; Str "three" ]) ]);
    check_parse "flow mapping" "m: {a: 1, b: c}\n" (Map [ ("m", Map [ ("a", Int 1); ("b", Str "c") ]) ]);
    check_parse "empty flow list" "xs: []\n" (Map [ ("xs", List []) ]);
    check_parse "nested flow" "xs: [[1, 2], {k: v}]\n"
      (Map [ ("xs", List [ List [ Int 1; Int 2 ]; Map [ ("k", Str "v") ] ]) ]);
    check_parse "null value key" "a:\nb: 1\n" (Map [ ("a", Null); ("b", Int 1) ]);
    check_parse "comment stripping" "a: 1 # trailing\n# full line\nb: 2\n"
      (Map [ ("a", Int 1); ("b", Int 2) ]);
    check_parse "hash inside quotes kept" "t: [\"#cis\", \"#owasp\"]\n"
      (Map [ ("t", List [ Str "#cis"; Str "#owasp" ]) ]);
    check_parse "sequence of inline maps" "- a: 1\n  b: 2\n- a: 3\n"
      (List [ Map [ ("a", Int 1); ("b", Int 2) ]; Map [ ("a", Int 3) ] ]);
    check_parse "literal block scalar" "d: |\n  line one\n  line two\n" (Map [ ("d", Str "line one\nline two") ]);
    check_parse "folded block scalar" "d: >\n  one\n  two\n" (Map [ ("d", Str "one two") ]);
    check_parse "doc separator ignored" "---\na: 1\n" (Map [ ("a", Int 1) ]);
    check_parse "colon in plain value" "url: http://x/y\n" (Map [ ("url", Str "http://x/y") ]);
    check_parse "quoted key" "\"a b\": 1\n" (Map [ ("a b", Int 1) ]);
  ]

let error_cases =
  [
    check_error "tab indentation" "a:\n\tb: 1\n";
    check_error "duplicate keys" "a: 1\na: 2\n";
    check_error "unterminated flow list" "xs: [1, 2\n";
    check_error "unterminated dquote" "a: \"oops\n";
    check_error "bad nesting" "a: 1\n    b: 2\n";
  ]

let multi_cases =
  [
    Alcotest.test_case "multi-document stream" `Quick (fun () ->
        match Yamlite.Parse.multi "a: 1\n---\nb: 2\n" with
        | Ok [ Map [ ("a", Int 1) ]; Map [ ("b", Int 2) ] ] -> ()
        | Ok docs -> Alcotest.failf "unexpected docs (%d)" (List.length docs)
        | Error e -> Alcotest.fail (Yamlite.Parse.error_to_string e));
    Alcotest.test_case "error carries line number" `Quick (fun () ->
        match Yamlite.Parse.string "a: 1\nb: [\n" with
        | Error { Yamlite.Parse.line; _ } -> Alcotest.(check int) "line" 2 line
        | Ok _ -> Alcotest.fail "expected error");
  ]

let print_cases =
  [
    Alcotest.test_case "print quotes ambiguous scalars" `Quick (fun () ->
        let v = Map [ ("a", Str "true"); ("b", Str "644"); ("c", Str "x: y") ] in
        let reparsed = Yamlite.Parse.string_exn (Yamlite.Print.to_string v) in
        Alcotest.(check bool) "roundtrip" true (Yamlite.Value.equal v reparsed));
    Alcotest.test_case "paper listing 2 parses" `Quick (fun () ->
        let doc =
          "config_name: ssl_protocols\n\
           config_path: [\"server\", \"http/server\"]\n\
           preferred_value: [ \"TLSv1.2\", \"TLSv1.3\" ]\n\
           non_preferred_value_match: substr,any\n\
           tags: [\"#security\", \"#ssl\", \"#owasp\"]\n"
        in
        let v = Yamlite.Parse.string_exn doc in
        Alcotest.(check bool) "has config_name" true (Yamlite.Value.find "config_name" v <> None);
        match Yamlite.Value.find "preferred_value" v with
        | Some l -> Alcotest.(check (option (list string))) "values" (Some [ "TLSv1.2"; "TLSv1.3" ])
                      (Yamlite.Value.get_str_list l)
        | None -> Alcotest.fail "preferred_value missing");
  ]

(* Round-trip property: print then parse is identity. *)
let value_gen =
  let open QCheck.Gen in
  let key_gen = string_size ~gen:(char_range 'a' 'z') (int_range 1 8) in
  let scalar =
    oneof
      [
        return Yamlite.Value.Null;
        map (fun b -> Yamlite.Value.Bool b) bool;
        map (fun i -> Yamlite.Value.Int i) small_signed_int;
        map (fun s -> Yamlite.Value.Str s)
          (string_size ~gen:(oneof [ char_range 'a' 'z'; char_range 'A' 'Z'; char_range '0' '9'; return ' '; return '.'; return '-'; return '#' ]) (int_range 0 12));
      ]
  in
  let rec value depth =
    if depth = 0 then scalar
    else
      frequency
        [
          (3, scalar);
          (1, map (fun l -> Yamlite.Value.List l) (list_size (int_range 0 4) (value (depth - 1))));
          ( 1,
            map
              (fun kvs ->
                (* Deduplicate keys: duplicate mapping keys are an error. *)
                let seen = Hashtbl.create 8 in
                Yamlite.Value.Map
                  (List.filter
                     (fun (k, _) ->
                       if Hashtbl.mem seen k then false
                       else begin
                         Hashtbl.add seen k ();
                         true
                       end)
                     kvs))
              (list_size (int_range 0 4) (pair key_gen (value (depth - 1)))) );
        ]
  in
  value 3

let roundtrip_prop =
  QCheck.Test.make ~count:500 ~name:"yaml print/parse roundtrip"
    (QCheck.make ~print:(fun v -> Yamlite.Print.to_string v) value_gen)
    (fun v ->
      match Yamlite.Parse.string (Yamlite.Print.to_string v) with
      | Ok v' -> Yamlite.Value.equal v v'
      | Error e ->
        QCheck.Test.fail_reportf "reparse failed: %s on\n%s" (Yamlite.Parse.error_to_string e)
          (Yamlite.Print.to_string v))

let suite =
  scalar_cases @ structure_cases @ error_cases @ multi_cases @ print_cases
  @ [ QCheck_alcotest.to_alcotest roundtrip_prop ]
