open Cvl

let corpus_cases =
  [
    Alcotest.test_case "paper rule census: 135 rules, 11 targets" `Quick (fun () ->
        Alcotest.(check int) "rules" 135 (Rulesets.paper_rule_count ());
        Alcotest.(check int) "targets" 11
          (List.length (Rulesets.applications @ Rulesets.system_services @ Rulesets.cloud_services)));
    Alcotest.test_case "56 keywords (46 paper + 2 resilience + 8 cluster), grouped" `Quick
      (fun () ->
        Alcotest.(check int) "total" 56 Keyword.count;
        Alcotest.(check int) "common" 20 (Keyword.count_in_group Keyword.Common);
        Alcotest.(check int) "tree" 9 (Keyword.count_in_group Keyword.Tree);
        Alcotest.(check int) "schema" 6 (Keyword.count_in_group Keyword.Schema);
        Alcotest.(check int) "path" 6 (Keyword.count_in_group Keyword.Path);
        Alcotest.(check int) "script" 4 (Keyword.count_in_group Keyword.Script);
        Alcotest.(check int) "composite" 3 (Keyword.count_in_group Keyword.Composite);
        Alcotest.(check int) "cluster" 8 (Keyword.count_in_group Keyword.Cluster));
    Alcotest.test_case "a rule typically has no more than ten keywords" `Quick (fun () ->
        (* §3.2's usability claim, measured over our whole corpus via the
           rendered rule files. *)
        List.iter
          (fun (path, text) ->
            if path <> "manifest.yaml" then
              match Yamlite.Parse.string_exn text with
              | Yamlite.Value.Map kvs -> (
                match List.assoc_opt "rules" kvs with
                | Some (Yamlite.Value.List rules) ->
                  List.iter
                    (fun rule ->
                      match rule with
                      | Yamlite.Value.Map rule_kvs ->
                        if List.length rule_kvs > 13 then
                          Alcotest.failf "%s: a rule has %d keywords" path (List.length rule_kvs)
                      | _ -> ())
                    rules
                | _ -> ())
              | _ -> ())
          Rulesets.files);
    Alcotest.test_case "every embedded file loads" `Quick (fun () ->
        let per_entity = Rulesets.all_rules () in
        Alcotest.(check int) "15 entities (11 + stack + post-paper growth)" 15 (List.length per_entity));
    Alcotest.test_case "rule names are unique within each entity" `Quick (fun () ->
        List.iter
          (fun (entity, rules) ->
            let names = List.map Rule.name rules in
            let unique = List.sort_uniq compare names in
            if List.length names <> List.length unique then
              Alcotest.failf "%s has duplicate rule names" entity)
          (Rulesets.all_rules ()));
    Alcotest.test_case "every rule carries tags and descriptions" `Quick (fun () ->
        List.iter
          (fun (entity, rules) ->
            List.iter
              (fun rule ->
                let c = Rule.common_of rule in
                if c.Rule.tags = [] then Alcotest.failf "%s/%s has no tags" entity (Rule.name rule);
                if
                  c.Rule.matched_description = ""
                  && c.Rule.not_matched_description = ""
                  && c.Rule.not_present_description = ""
                then Alcotest.failf "%s/%s has no output strings" entity (Rule.name rule))
              rules)
          (Rulesets.all_rules ()));
    Alcotest.test_case "docker coverage matches the paper's framing" `Quick (fun () ->
        (* 41% of the CIS Docker checklist: our corpus covers 15 of it;
           the claim here is just that docker rules exist in number. *)
        let docker = List.assoc "docker" (Rulesets.all_rules ()) in
        Alcotest.(check int) "docker rules" 15 (List.length docker));
    Alcotest.test_case "Table 1 standards mapping" `Quick (fun () ->
        Alcotest.(check string) "nginx" "OWASP" (Rulesets.standard_of "nginx");
        Alcotest.(check string) "hadoop" "HIPAA, PCI" (Rulesets.standard_of "hadoop");
        Alcotest.(check string) "openstack" "OSSG" (Rulesets.standard_of "openstack");
        Alcotest.(check string) "sshd" "CIS" (Rulesets.standard_of "sshd"));
    Alcotest.test_case "all five rule types appear in the corpus" `Quick (fun () ->
        let kinds =
          Rulesets.all_rules ()
          |> List.concat_map snd
          |> List.map Rule.kind_to_string
          |> List.sort_uniq compare
        in
        Alcotest.(check (list string)) "kinds"
          [ "composite"; "config-tree"; "path"; "schema"; "script" ]
          kinds);
  ]

let suite = corpus_cases
