let host () = Scenarios.Host.compliant ()

let find_cases =
  [
    Alcotest.test_case "directory search" `Quick (fun () ->
        let found =
          Crawler.find_config_files (host ()) ~search_paths:[ "/etc/ssh" ] ~patterns:[]
        in
        Alcotest.(check (list string)) "paths" [ "/etc/ssh/sshd_config" ]
          (List.map (fun (e : Crawler.extracted) -> e.Crawler.source_path) found));
    Alcotest.test_case "single file search" `Quick (fun () ->
        let found =
          Crawler.find_config_files (host ()) ~search_paths:[ "/etc/sysctl.conf" ] ~patterns:[]
        in
        Alcotest.(check int) "one" 1 (List.length found));
    Alcotest.test_case "pattern filtering" `Quick (fun () ->
        let found =
          Crawler.find_config_files (host ()) ~search_paths:[ "/etc" ] ~patterns:[ "*.conf" ]
        in
        Alcotest.(check bool) "only .conf" true
          (List.for_all
             (fun (e : Crawler.extracted) ->
               Filename.check_suffix e.Crawler.source_path ".conf")
             found);
        Alcotest.(check bool) "found some" true (found <> []));
    Alcotest.test_case "path-suffix patterns" `Quick (fun () ->
        Alcotest.(check bool) "matches" true
          (Crawler.pattern_matches "sites-enabled/*" "/etc/nginx/sites-enabled/shop");
        Alcotest.(check bool) "no match" false
          (Crawler.pattern_matches "sites-enabled/*" "/etc/nginx/nginx.conf"));
    Alcotest.test_case "missing search path is empty" `Quick (fun () ->
        Alcotest.(check int) "none" 0
          (List.length (Crawler.find_config_files (host ()) ~search_paths:[ "/nonexistent" ] ~patterns:[])));
    Alcotest.test_case "results deduplicated and sorted" `Quick (fun () ->
        let found =
          Crawler.find_config_files (host ())
            ~search_paths:[ "/etc/ssh"; "/etc/ssh/sshd_config" ] ~patterns:[]
        in
        Alcotest.(check int) "dedup" 1 (List.length found));
    Alcotest.test_case "metadata carried" `Quick (fun () ->
        let found =
          Crawler.find_config_files (host ()) ~search_paths:[ "/etc/ssh/sshd_config" ] ~patterns:[]
        in
        match found with
        | [ e ] -> Alcotest.(check int) "mode" 0o600 e.Crawler.file.Frames.File.mode
        | _ -> Alcotest.fail "expected one file");
  ]

let plugin_cases =
  [
    Alcotest.test_case "sysctl_runtime renders the live table" `Quick (fun () ->
        match Crawler.run_plugin (host ()) ~name:"sysctl_runtime" with
        | Ok out ->
          Alcotest.(check bool) "randomize_va_space" true
            (Re.execp (Re.compile (Re.str "kernel.randomize_va_space = 2")) out)
        | Error e -> Alcotest.fail e);
    Alcotest.test_case "sysctl_runtime errors without kernel table" `Quick (fun () ->
        let empty = Frames.Frame.create ~id:"e" Frames.Frame.Host in
        Alcotest.(check bool) "error" true
          (Result.is_error (Crawler.run_plugin empty ~name:"sysctl_runtime")));
    Alcotest.test_case "mysql_variables reads runtime doc" `Quick (fun () ->
        let frame = Scenarios.Webstack.mysql_container_frame ~compliant:true in
        match Crawler.run_plugin frame ~name:"mysql_variables" with
        | Ok out -> Alcotest.(check bool) "have_ssl" true (Re.execp (Re.compile (Re.str "have_ssl")) out)
        | Error e -> Alcotest.fail e);
    Alcotest.test_case "docker_inspect plugin output parses as json" `Quick (fun () ->
        let frame = Scenarios.Webstack.nginx_container_frame ~compliant:false in
        match Crawler.run_plugin frame ~name:"docker_inspect" with
        | Ok out -> Alcotest.(check bool) "json" true (Result.is_ok (Jsonlite.parse out))
        | Error e -> Alcotest.fail e);
    Alcotest.test_case "process_list plugin" `Quick (fun () ->
        match Crawler.run_plugin (host ()) ~name:"process_list" with
        | Ok out -> (
          match Lenses.Registry.parse ~lens_name:"proc" ~path:"plugin://proc" out with
          | Ok (Lenses.Lens.Table t) ->
            Alcotest.(check bool) "sshd row" true
              (List.exists (fun row -> List.nth row 2 = "/usr/sbin/sshd -D") t.Configtree.Table.rows)
          | _ -> Alcotest.fail "expected table")
        | Error e -> Alcotest.fail e);
    Alcotest.test_case "package_list plugin" `Quick (fun () ->
        match Crawler.run_plugin (host ()) ~name:"package_list" with
        | Ok out -> Alcotest.(check bool) "auditd" true (Re.execp (Re.compile (Re.str "auditd=2.3.2")) out)
        | Error e -> Alcotest.fail e);
    Alcotest.test_case "unknown plugin errors" `Quick (fun () ->
        Alcotest.(check bool) "error" true (Result.is_error (Crawler.run_plugin (host ()) ~name:"nope")));
    Alcotest.test_case "every plugin names a registered lens" `Quick (fun () ->
        List.iter
          (fun (p : Crawler.plugin) ->
            if Lenses.Registry.find p.Crawler.lens_name = None then
              Alcotest.failf "plugin %s names unknown lens %s" p.Crawler.plugin_name p.Crawler.lens_name)
          Crawler.plugins);
  ]

let suite = find_cases @ plugin_cases
