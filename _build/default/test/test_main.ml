let () =
  Alcotest.run "configvalidator"
    [
      ("yamlite", Test_yamlite.suite);
      ("jsonlite", Test_jsonlite.suite);
      ("xmllite", Test_xmllite.suite);
      ("configtree", Test_configtree.suite);
      ("lenses", Test_lenses.suite);
      ("frames", Test_frames.suite);
      ("docksim", Test_docksim.suite);
      ("dockerfile", Test_dockerfile.suite);
      ("cloudsim", Test_cloudsim.suite);
      ("crawler", Test_crawler.suite);
      ("matcher", Test_matcher.suite);
      ("expr", Test_expr.suite);
      ("loader", Test_loader.suite);
      ("pool", Test_pool.suite);
      ("engine", Test_engine.suite);
      ("engine-props", Test_engine_props.suite);
      ("validator", Test_validator.suite);
      ("rulesets", Test_rulesets.suite);
      ("cvlint", Test_cvlint.suite);
      ("remediate", Test_remediate.suite);
      ("orchestrator", Test_orchestrator.suite);
      ("incremental", Test_incremental.suite);
      ("daemon", Test_daemon.suite);
      ("cluster", Test_cluster.suite);
      ("compile", Test_compile.suite);
      ("report", Test_report.suite);
      ("robustness", Test_robustness.suite);
      ("resilience", Test_resilience.suite);
      ("misc", Test_misc.suite);
      ("baselines", Test_baselines.suite);
      ("dsl", Test_dsl.suite);
    ]
