(* Semantic laws of the rule engine, checked over randomized sshd-style
   configurations and rule fragments. *)

open Cvl

let ident = QCheck.Gen.(string_size ~gen:(char_range 'a' 'e') (int_range 1 4))

let config_gen =
  QCheck.Gen.(
    let* entries = list_size (int_range 0 8) (pair ident ident) in
    return entries)

let frame_of entries =
  let content =
    String.concat "" (List.map (fun (k, v) -> Printf.sprintf "%s %s\n" k v) entries)
  in
  Frames.Frame.add_file
    (Frames.Frame.create ~id:"prop" Frames.Frame.Host)
    (Frames.File.make ~content "/etc/ssh/sshd_config")

let ctx_of entries =
  Engine.build_ctx (frame_of entries)
    {
      Manifest.entity = "sshd";
      enabled = true;
      search_paths = [ "/etc/ssh" ];
      cvl_file = "-";
      lens = Some "sshd";
      rule_type = None;
      flaky_plugins = [];
    }

let tree_rule ?preferred ?non_preferred ?(not_present_pass = false) ?(check_presence_only = false)
    name =
  Rule.Tree
    {
      Rule.tree_common = Rule.common name;
      config_paths = [ "" ];
      preferred;
      non_preferred;
      file_context = [];
      require_other_configs = [];
      value_separator = None;
      case_insensitive = false;
      check_presence_only;
      not_present_pass;
    }

let verdict ctx rule = (Engine.eval_rule ctx rule).Engine.verdict

let scenario_gen = QCheck.Gen.(triple config_gen ident (list_size (int_range 1 3) ident))

let print_scenario (entries, key, values) =
  Printf.sprintf "config=[%s] key=%s values=[%s]"
    (String.concat ";" (List.map (fun (k, v) -> k ^ " " ^ v) entries))
    key (String.concat ";" values)

let prop name f =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:500 ~name (QCheck.make ~print:print_scenario scenario_gen) f)

let not_present_iff_absent =
  prop "Not_present iff the key never occurs" (fun (entries, key, values) ->
      let ctx = ctx_of entries in
      let rule =
        tree_rule ~preferred:{ Rule.values; match_spec = Matcher.default } key
      in
      let absent = not (List.mem_assoc key entries) in
      (verdict ctx rule = Engine.Not_present) = absent)

let removing_non_preferred_never_hurts =
  prop "removing non_preferred never turns Matched into a violation"
    (fun (entries, key, values) ->
      let ctx = ctx_of entries in
      let with_np =
        tree_rule
          ~preferred:{ Rule.values; match_spec = Matcher.default }
          ~non_preferred:{ Rule.values; match_spec = { Matcher.kind = Matcher.Substr; scope = Matcher.Any } }
          key
      in
      let without_np =
        tree_rule ~preferred:{ Rule.values; match_spec = Matcher.default } key
      in
      verdict ctx with_np <> Engine.Matched || verdict ctx without_np = Engine.Matched)

let not_present_pass_only_affects_absence =
  prop "not_present_pass only reinterprets absence" (fun (entries, key, values) ->
      let ctx = ctx_of entries in
      let strict = tree_rule ~preferred:{ Rule.values; match_spec = Matcher.default } key in
      let lax =
        tree_rule ~preferred:{ Rule.values; match_spec = Matcher.default } ~not_present_pass:true key
      in
      match (verdict ctx strict, verdict ctx lax) with
      | Engine.Not_present, Engine.Matched -> true
      | a, b -> a = b)

let presence_only_ignores_values =
  prop "check_presence_only is insensitive to expectations" (fun (entries, key, values) ->
      let ctx = ctx_of entries in
      let bare = tree_rule ~check_presence_only:true key in
      let with_values =
        tree_rule ~check_presence_only:true
          ~preferred:{ Rule.values; match_spec = Matcher.default }
          key
      in
      verdict ctx bare = verdict ctx with_values)

let exact_match_implies_substr_match =
  prop "a rule matching exactly also matches as substring" (fun (entries, key, values) ->
      let ctx = ctx_of entries in
      let exact =
        tree_rule ~preferred:{ Rule.values; match_spec = { Matcher.kind = Matcher.Exact; scope = Matcher.Any } } key
      in
      let substr =
        tree_rule ~preferred:{ Rule.values; match_spec = { Matcher.kind = Matcher.Substr; scope = Matcher.Any } } key
      in
      verdict ctx exact <> Engine.Matched || verdict ctx substr = Engine.Matched)

let disabled_is_inert =
  prop "disabled rules never produce findings" (fun (entries, key, values) ->
      let ctx = ctx_of entries in
      let rule =
        match tree_rule ~preferred:{ Rule.values; match_spec = Matcher.default } key with
        | Rule.Tree r ->
          Rule.Tree { r with Rule.tree_common = { r.Rule.tree_common with Rule.disabled = true } }
        | r -> r
      in
      verdict ctx rule = Engine.Not_applicable)

(* Incremental law over random edits: splicing equals recomputation. *)
let incremental_matches_full =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:60 ~name:"incremental revalidation equals a full run (random edits)"
       (QCheck.make ~print:print_scenario scenario_gen)
       (fun (entries, key, _) ->
         let rules =
           Result.get_ok
             (Validator.load_rules ~source:Rulesets.source ~manifest:Rulesets.manifest)
         in
         let before = Scenarios.Host.compliant () in
         let previous = (Validator.run_loaded ~rules [ before ]).Validator.results in
         (* Random edit: append generated entries to sshd_config and set
            one kernel param. *)
         let after =
           List.fold_left
             (fun frame (k, v) ->
               Frames.Frame.append_line frame ~path:"/etc/ssh/sshd_config" (k ^ " " ^ v))
             before entries
         in
         let after = Frames.Frame.set_kernel_param after ("fuzz." ^ key) "1" in
         let merged, _ =
           Incremental.revalidate ~rules ~previous ~diff:(Frames.Diff.between before after) after
         in
         let key_of (r : Engine.result) =
           (r.Engine.entity, Rule.name r.Engine.rule, Engine.verdict_to_string r.Engine.verdict)
         in
         let full = (Validator.run_loaded ~rules [ after ]).Validator.results in
         List.sort compare (List.map key_of merged) = List.sort compare (List.map key_of full)))

let suite =
  [
    not_present_iff_absent;
    removing_non_preferred_never_hurts;
    not_present_pass_only_affects_absence;
    presence_only_ignores_values;
    exact_match_implies_substr_match;
    disabled_is_inert;
    incremental_matches_full;
  ]
