open Cvl

let run ?tags frames =
  Validator.run ?tags ~source:Rulesets.source ~manifest:Rulesets.manifest frames

let violations t =
  Report.violations t.Validator.results
  |> List.map (fun (r : Engine.result) -> (r.Engine.entity, Rule.name r.Engine.rule))
  |> List.sort_uniq compare

let detection_cases =
  [
    Alcotest.test_case "compliant deployment is all green" `Quick (fun () ->
        let t = run (Scenarios.Deployment.three_tier ~compliant:true) in
        Alcotest.(check (list (pair string string))) "no load errors" [] t.Validator.load_errors;
        Alcotest.(check (list (pair string string))) "no violations" [] (violations t));
    Alcotest.test_case "misconfigured deployment reports exactly the injected faults" `Quick
      (fun () ->
        let t = run (Scenarios.Deployment.three_tier ~compliant:false) in
        let expected = List.sort_uniq compare Scenarios.Deployment.injected_faults in
        Alcotest.(check (list (pair string string))) "faults" expected (violations t));
    Alcotest.test_case "misconfigured host alone" `Quick (fun () ->
        let t = run [ Scenarios.Host.misconfigured () ] in
        let expected = List.sort_uniq compare Scenarios.Host.injected_faults in
        let host_violations =
          List.filter (fun (e, _) -> List.mem_assoc e (List.map (fun x -> (fst x, ())) expected))
            (violations t)
        in
        Alcotest.(check (list (pair string string))) "host faults" expected host_violations);
    Alcotest.test_case "image scanning finds config faults before runtime" `Quick (fun () ->
        let t = run [ Scenarios.Webstack.nginx_image_frame ~compliant:false ] in
        let nginx = List.filter (fun (e, _) -> e = "nginx") (violations t) in
        Alcotest.(check bool) "ssl_protocols flagged" true (List.mem ("nginx", "ssl_protocols") nginx);
        Alcotest.(check bool) "autoindex flagged" true (List.mem ("nginx", "autoindex") nginx));
  ]

let composite_cases =
  [
    Alcotest.test_case "listing 1 composite passes on the compliant stack" `Quick (fun () ->
        let t = run (Scenarios.Deployment.three_tier ~compliant:true) in
        let result =
          List.find
            (fun (r : Engine.result) ->
              Rule.name r.Engine.rule = "mysql ssl-ca path and sysctl and nginx SSL")
            t.Validator.results
        in
        Alcotest.(check string) "verdict" "matched" (Engine.verdict_to_string result.Engine.verdict));
    Alcotest.test_case "composites aggregate across frames" `Quick (fun () ->
        (* The nginx fact lives in one frame, the mysql fact in another,
           the sysctl fact in a third. *)
        let frames = Scenarios.Deployment.three_tier ~compliant:true in
        let t = run frames in
        let composite_results =
          List.filter
            (fun (r : Engine.result) -> Rule.kind_to_string r.Engine.rule = "composite")
            t.Validator.results
        in
        Alcotest.(check int) "three composites" 3 (List.length composite_results);
        List.iter
          (fun (r : Engine.result) ->
            Alcotest.(check string)
              (Rule.name r.Engine.rule) "matched"
              (Engine.verdict_to_string r.Engine.verdict))
          composite_results);
    Alcotest.test_case "composite fails when one tier is missing" `Quick (fun () ->
        (* Without the mysql container, have_ssl cannot match. *)
        let frames =
          [ Scenarios.Host.compliant (); Scenarios.Webstack.nginx_container_frame ~compliant:true ]
        in
        let t = run frames in
        let result =
          List.find
            (fun (r : Engine.result) -> Rule.name r.Engine.rule = "tls_everywhere")
            t.Validator.results
        in
        Alcotest.(check string) "verdict" "not-matched" (Engine.verdict_to_string result.Engine.verdict));
  ]

let filter_cases =
  [
    Alcotest.test_case "tag filtering selects rule subsets" `Quick (fun () ->
        let t = run ~tags:[ "#cisdocker_5.4" ] [ Scenarios.Webstack.nginx_container_frame ~compliant:false ] in
        let names =
          List.map (fun (r : Engine.result) -> Rule.name r.Engine.rule) t.Validator.results
          |> List.sort_uniq compare
        in
        (* Both the container-runtime rule and the compose rule carry
           the CIS Docker 5.4 tag. *)
        Alcotest.(check (list string)) "only the 5.4 rules" [ "container_privileged"; "privileged" ]
          names);
    Alcotest.test_case "multi-frame runs drop not-applicable noise" `Quick (fun () ->
        let t = run (Scenarios.Deployment.three_tier ~compliant:true) in
        Alcotest.(check bool) "no n/a results" true
          (List.for_all
             (fun (r : Engine.result) -> r.Engine.verdict <> Engine.Not_applicable)
             t.Validator.results));
    Alcotest.test_case "single-frame runs keep not-applicable" `Quick (fun () ->
        let t = run [ Scenarios.Host.compliant () ] in
        Alcotest.(check bool) "has n/a (apache etc.)" true
          (List.exists
             (fun (r : Engine.result) -> r.Engine.verdict = Engine.Not_applicable)
             t.Validator.results));
  ]

let report_cases =
  [
    Alcotest.test_case "summary counts are consistent" `Quick (fun () ->
        let t = run (Scenarios.Deployment.three_tier ~compliant:false) in
        let s = Report.summarize t.Validator.results in
        Alcotest.(check int) "total" (List.length t.Validator.results) s.Report.total;
        Alcotest.(check int) "partition" s.Report.total
          (s.Report.matched + s.Report.violations + s.Report.not_applicable + s.Report.errors));
    Alcotest.test_case "json report parses and carries the summary" `Quick (fun () ->
        let t = run [ Scenarios.Host.misconfigured () ] in
        let json = Report.to_json t.Validator.results in
        let reparsed = Jsonlite.parse_exn (Jsonlite.to_string json) in
        let summary = Option.get (Jsonlite.member "summary" reparsed) in
        let violations = Option.get (Jsonlite.member "violations" summary) in
        Alcotest.(check bool) "violations > 0" true
          (match Jsonlite.get_num violations with Some f -> f > 0. | None -> false));
    Alcotest.test_case "text report mentions the paper's output strings" `Quick (fun () ->
        let t = run [ Scenarios.Host.misconfigured () ] in
        let text = Report.to_text t.Validator.results in
        Alcotest.(check bool) "PermitRootLogin line" true
          (Re.execp (Re.compile (Re.str "PermitRootLogin is present but it is enabled.")) text));
    Alcotest.test_case "verbose report includes suggested actions" `Quick (fun () ->
        let t = run [ Scenarios.Host.misconfigured () ] in
        let text = Report.to_text ~verbose:true t.Validator.results in
        Alcotest.(check bool) "action hint" true
          (Re.execp (Re.compile (Re.str "PermitRootLogin no")) text));
  ]

let suite = detection_cases @ composite_cases @ filter_cases @ report_cases
