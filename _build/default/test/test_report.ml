open Cvl

let run frames = (Validator.run ~source:Rulesets.source ~manifest:Rulesets.manifest frames).Validator.results

let junit_cases =
  [
    Alcotest.test_case "junit output is well-formed XML with correct counts" `Quick (fun () ->
        let results = run [ Scenarios.Host.misconfigured () ] in
        let xml = Report.to_junit results in
        match Xmllite.parse xml with
        | Error e -> Alcotest.fail (Xmllite.error_to_string e)
        | Ok root ->
          Alcotest.(check string) "root" "testsuites" root.Xmllite.tag;
          let suites = Xmllite.find_all "testsuite" root in
          let total_failures =
            List.fold_left
              (fun acc suite ->
                acc + int_of_string (Option.value (Xmllite.attr "failures" suite) ~default:"0"))
              0 suites
          in
          let s = Report.summarize results in
          Alcotest.(check int) "failures match summary" s.Report.violations total_failures;
          let cases = Xmllite.descendants "testcase" root in
          Alcotest.(check int) "one case per result" s.Report.total (List.length cases));
    Alcotest.test_case "junit escapes rule content" `Quick (fun () ->
        (* Details contain quotes and ampersands; the XML must reparse. *)
        let results = run [ Scenarios.Webstack.nginx_container_frame ~compliant:false ] in
        Alcotest.(check bool) "parses" true (Result.is_ok (Xmllite.parse (Report.to_junit results))));
  ]

let compare_cases =
  [
    Alcotest.test_case "remediation shows up as fixes, no regressions" `Quick (fun () ->
        let frames = [ Scenarios.Host.misconfigured () ] in
        let before = run frames in
        let frames', _, _ =
          Remediate.fixpoint ~source:Rulesets.source ~manifest:Rulesets.manifest frames
        in
        let after = run frames' in
        let c = Report.compare_runs ~before ~after in
        Alcotest.(check int) "no regressions" 0 (List.length c.Report.regressions);
        Alcotest.(check bool) "many fixes" true (List.length c.Report.fixes > 10);
        Alcotest.(check bool) "script findings persist" true
          (List.exists
             (fun (r : Engine.result) -> Rule.name r.Engine.rule = "kernel.randomize_va_space")
             c.Report.still_violating));
    Alcotest.test_case "a new fault is a regression" `Quick (fun () ->
        let good = Scenarios.Host.compliant () in
        let before = run [ good ] in
        let bad =
          Frames.Frame.set_content good ~path:"/etc/sysctl.conf" "net.ipv4.ip_forward = 1\n"
        in
        (* Keep the frame id stable so findings correlate. *)
        let after = run [ bad ] in
        let c = Report.compare_runs ~before ~after in
        Alcotest.(check bool) "ip_forward regressed" true
          (List.exists
             (fun (r : Engine.result) -> Rule.name r.Engine.rule = "net.ipv4.ip_forward")
             c.Report.regressions));
    Alcotest.test_case "identical runs compare clean" `Quick (fun () ->
        (* The full deployment: a lone host leaves the cross-entity
           composites unsatisfied. *)
        let results = run (Scenarios.Deployment.three_tier ~compliant:true) in
        let c = Report.compare_runs ~before:results ~after:results in
        Alcotest.(check string) "summary" "0 regression(s), 0 fix(es), 0 still violating"
          (Report.comparison_summary c));
  ]

let codec_cases =
  [
    Alcotest.test_case "frame JSON roundtrip preserves validation verdicts" `Quick (fun () ->
        List.iter
          (fun frame ->
            let text = Frames.Codec.to_string frame in
            match Frames.Codec.of_string text with
            | Error e -> Alcotest.fail e
            | Ok frame' ->
              let key (r : Engine.result) =
                (r.Engine.entity, Rule.name r.Engine.rule, Engine.verdict_to_string r.Engine.verdict)
              in
              Alcotest.(check (list (triple string string string)))
                ("verdicts for " ^ Frames.Frame.id frame)
                (List.sort compare (List.map key (run [ frame ])))
                (List.sort compare (List.map key (run [ frame' ]))))
          [
            Scenarios.Host.misconfigured ();
            Scenarios.Webstack.mysql_container_frame ~compliant:false;
            Scenarios.Cloud.misconfigured_frame ();
          ]);
    Alcotest.test_case "frame roundtrip preserves structure" `Quick (fun () ->
        let frame = Scenarios.Host.compliant () in
        let frame' = Result.get_ok (Frames.Codec.of_string (Frames.Codec.to_string frame)) in
        Alcotest.(check bool) "diff empty" true
          (Frames.Diff.is_empty (Frames.Diff.between frame frame')));
    Alcotest.test_case "codec rejects malformed documents" `Quick (fun () ->
        Alcotest.(check bool) "not json" true (Result.is_error (Frames.Codec.of_string "nope"));
        Alcotest.(check bool) "missing id" true (Result.is_error (Frames.Codec.of_string "{}"));
        Alcotest.(check bool) "bad kind" true
          (Result.is_error
             (Frames.Codec.of_string {|{"id": "x", "entity": {"kind": "mainframe"}}|})));
  ]

let suite = junit_cases @ compare_cases @ codec_cases
