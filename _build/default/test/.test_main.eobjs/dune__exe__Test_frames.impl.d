test/test_frames.ml: Alcotest File Frame Frames List Option QCheck QCheck_alcotest String
