test/test_matcher.ml: Alcotest Cvl List Matcher Printf QCheck QCheck_alcotest Result String
