test/test_resilience.ml: Alcotest Crawler Cvl Engine Faultsim Frames Fun Hashtbl List Matcher Normcache Option Printf Resilience Result Rule Rulesets Scenarios String Validator
