test/test_dsl.ml: Alcotest Checkir Dsl Engine Inspeclite List Scap Scenarios
