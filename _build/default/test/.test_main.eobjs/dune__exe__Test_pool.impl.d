test/test_pool.ml: Alcotest Atomic Domain Fun List Pool Printexc Result
