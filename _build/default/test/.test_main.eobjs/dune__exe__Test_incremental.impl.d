test/test_incremental.ml: Alcotest Cvl Engine Frames Incremental List Result Rule Rulesets Scenarios Validator
