test/test_incremental.ml: Alcotest Cvl Engine Frames Incremental List Normcache Pool Result Rule Rulesets Scenarios Validator
