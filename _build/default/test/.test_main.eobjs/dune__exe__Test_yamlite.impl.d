test/test_yamlite.ml: Alcotest Hashtbl List QCheck QCheck_alcotest Yamlite
