test/test_orchestrator.ml: Alcotest Configtree Cvl Engine Lenses List Option Report Result Rule Rulesets Scenarios Validator
