test/test_baselines.ml: Alcotest Checkir Confvalley Cvl Inspeclite List Re Result Scap Scenarios String
