test/test_jsonlite.ml: Alcotest Docksim Hashtbl Jsonlite List Option QCheck QCheck_alcotest Scenarios
