test/test_validator.ml: Alcotest Cvl Engine Jsonlite List Normcache Option Pool Re Report Result Rule Rulesets Scenarios Validator
