test/test_validator.ml: Alcotest Cvl Engine Jsonlite List Option Re Report Rule Rulesets Scenarios Validator
