test/test_report.ml: Alcotest Cvl Engine Frames List Option Remediate Report Result Rule Rulesets Scenarios Validator Xmllite
