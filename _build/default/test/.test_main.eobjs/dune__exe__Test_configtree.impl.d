test/test_configtree.ml: Alcotest Array Configtree Index List Option Path Printf QCheck QCheck_alcotest Result Table Tree
