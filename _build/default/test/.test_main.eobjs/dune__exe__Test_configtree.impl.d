test/test_configtree.ml: Alcotest Configtree Index List Option Path Printf QCheck QCheck_alcotest Result Table Tree
