test/test_engine_props.ml: Cvl Engine Frames Incremental List Manifest Matcher Printf QCheck QCheck_alcotest Result Rule Rulesets Scenarios String Validator
