test/test_lenses.ml: Alcotest Configtree Lenses List Option Result Scenarios
