test/test_rulesets.ml: Alcotest Cvl Keyword List Rule Rulesets Yamlite
