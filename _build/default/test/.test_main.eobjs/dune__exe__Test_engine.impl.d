test/test_engine.ml: Alcotest Cvl Engine Frames Lenses Manifest Matcher Rule Scenarios
