test/test_cvlint.ml: Alcotest Cvl Cvlint Jsonlite List Option Rulesets String
