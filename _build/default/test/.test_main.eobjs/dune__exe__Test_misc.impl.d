test/test_misc.ml: Alcotest Cvl Engine Frames Keyword List Manifest Option Report Rule Rulesets Scenarios Validator
