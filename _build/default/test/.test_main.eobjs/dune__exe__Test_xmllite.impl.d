test/test_xmllite.ml: Alcotest Checkir Configtree Lenses List Scap Xmllite
