test/test_docksim.ml: Alcotest Container Docksim Frames Image Jsonlite Layer List Option Printf QCheck QCheck_alcotest Re Scenarios String
