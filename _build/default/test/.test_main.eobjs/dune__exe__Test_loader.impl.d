test/test_loader.ml: Alcotest Cvl Expr List Loader Manifest Matcher Option Re Result Rule Rulesets
