test/test_robustness.ml: Char Configtree Confvalley Cvl Inspeclite Jsonlite Lenses List Printexc Printf QCheck QCheck_alcotest Scenarios String Xmllite Yamlite
