test/test_remediate.ml: Alcotest Cvl Engine Frames List Loader Manifest Option Re Remediate Report Result Rule Rulesets Scenarios Validator
