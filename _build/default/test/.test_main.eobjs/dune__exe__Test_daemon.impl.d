test/test_daemon.ml: Alcotest Buffer Client Cvl Daemon Domain Faultsim Filename Frames Fun In_channel Jsonlite List Option Out_channel Printf Protocol Result Rulesets Scenarios Server String Sys Unix
