test/test_cluster.ml: Alcotest Array Cvl Daemon Engine Frames Fun Incremental List Loader Manifest Printf QCheck QCheck_alcotest Random Result Rule String Validator
