test/test_dockerfile.ml: Alcotest Cvl Dockerfile Docksim Frames Image Layer List Option Re Rulesets Scenarios
