test/test_compile.ml: Alcotest Compile Cvl Engine Faultsim Fun Fuse List Loader Manifest Matcher Normcache Printf QCheck QCheck_alcotest Result Rule Rulesets Scenarios String Validator
