test/test_crawler.ml: Alcotest Configtree Crawler Filename Frames Jsonlite Lenses List Re Result Scenarios
