test/test_expr.ml: Alcotest Cvl Expr List QCheck QCheck_alcotest Result
