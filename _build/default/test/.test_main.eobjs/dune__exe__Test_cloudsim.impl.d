test/test_cloudsim.ml: Alcotest Cloudsim Crawler Frames Jsonlite List Option Re Scenarios Secgroup
