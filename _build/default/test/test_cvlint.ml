(* The cvlint static analyzer: every diagnostic code in the registry is
   triggered by a fixture under test/cvl_bad/ and asserted with its
   exact file:line span. *)

module D = Cvlint.Diagnostic

let source = Cvl.Loader.file_source ~root:"cvl_bad"
let lint file = Cvlint.lint_file ~source file

let show diags =
  let text = Cvlint.Render.to_text diags in
  if text = "" then "(no diagnostics)" else text

let check_has diags code file line =
  if
    not
      (List.exists
         (fun (d : D.t) ->
           String.equal d.D.code.D.id code
           && String.equal d.D.span.D.file file
           && d.D.span.D.line = line)
         diags)
  then
    Alcotest.failf "expected %s at %s:%d, got:\n%s" code file line (show diags)

let suggestion_of diags code =
  List.find_map
    (fun (d : D.t) ->
      if String.equal d.D.code.D.id code then d.D.suggestion else None)
    diags

(* (code, fixture, expected line of the span) — the span points at the
   offending field/rule, not at the top of the file. *)
let fixture_cases =
  [
    ("CVL001", "cvl001.yaml", 5);
    ("CVL003", "cvl003.yaml", 3);
    ("CVL004", "cvl004.yaml", 2);
    ("CVL010", "cvl010.yaml", 4);
    ("CVL011", "cvl011.yaml", 6);
    ("CVL012", "cvl012.yaml", 7);
    ("CVL020", "cvl020.yaml", 5);
    ("CVL021", "cvl021.yaml", 4);
    ("CVL022", "cvl022.yaml", 5);
    ("CVL023", "cvl023.yaml", 5);
    ("CVL024", "cvl024.yaml", 4);
    ("CVL025", "cvl025.yaml", 4);
    ("CVL031", "cvl031.yaml", 5);
    ("CVL034", "cvl034.yaml", 4);
    ("CVL040", "cvl040.yaml", 3);
    ("CVL041", "cvl041.yaml", 5);
    ("CVL042", "cvl042.yaml", 6);
  ]

let fixture_tests =
  [
    Alcotest.test_case "single-file fixtures" `Quick (fun () ->
        List.iter
          (fun (code, file, line) -> check_has (lint file) code file line)
          fixture_cases);
    Alcotest.test_case "inheritance cycle (CVL005)" `Quick (fun () ->
        (* cvl005.yaml -> cvl005_other.yaml -> cvl005.yaml: the cycle is
           reported at the parent_cvl_file line that closes it. *)
        check_has (lint "cvl005.yaml") "CVL005" "cvl005_other.yaml" 1);
    Alcotest.test_case "shadowed rule is info (CVL013)" `Quick (fun () ->
        let diags = lint "cvl013.yaml" in
        check_has diags "CVL013" "cvl013.yaml" 5;
        let d =
          List.find (fun (d : D.t) -> d.D.code.D.id = "CVL013") diags
        in
        Alcotest.(check string) "severity" "info"
          (D.severity_to_string d.D.code.D.severity);
        (* the message names the ancestor definition *)
        Alcotest.(check bool) "names parent" true
          (List.exists
             (fun sub -> sub = "cvl013_parent.yaml:2")
             (String.split_on_char ' ' d.D.message)));
    Alcotest.test_case "corpus fixtures (manifest-level codes)" `Quick (fun () ->
        let diags =
          Cvlint.lint_corpus
            ~source:(Cvl.Loader.file_source ~root:"cvl_bad/corpus")
            ()
        in
        check_has diags "CVL002" "manifest.yaml" 15;  (* unknown key *)
        check_has diags "CVL002" "manifest.yaml" 17;  (* cvl_file required *)
        check_has diags "CVL030" "manifest.yaml" 14;
        check_has diags "CVL043" "manifest.yaml" 11;
        check_has diags "CVL032" "cvl032.yaml" 5;
        check_has diags "CVL033" "cvl033.yaml" 4;
        check_has diags "CVL050" "cvl050.yaml" 5;
        let d = List.find (fun (d : D.t) -> d.D.code.D.id = "CVL050") diags in
        Alcotest.(check string) "CVL050 is a warning" "warning"
          (D.severity_to_string d.D.code.D.severity);
        (* the same rule without the manifest flag draws nothing *)
        let solo = lint "corpus/cvl050.yaml" in
        Alcotest.(check bool) "no CVL050 without the flaky_plugins flag" false
          (List.exists (fun (d : D.t) -> d.D.code.D.id = "CVL050") solo));
  ]

let behavior_tests =
  [
    Alcotest.test_case "did-you-mean suggestions" `Quick (fun () ->
        Alcotest.(check (option string)) "keyword typo"
          (Some "did you mean \"preferred_value\"?")
          (suggestion_of (lint "cvl010.yaml") "CVL010");
        Alcotest.(check (option string)) "plugin typo"
          (Some "did you mean \"sysctl_runtime\"?")
          (suggestion_of (lint "cvl031.yaml") "CVL031"));
    Alcotest.test_case "clean file has no findings" `Quick (fun () ->
        let diags =
          Cvlint.lint_text
            "rules:\n  - config_name: ssl\n    preferred_value: [\"on\"]\n    tags: [\"#x\"]\n"
        in
        Alcotest.(check int) "count" 0 (List.length diags));
    Alcotest.test_case "lint_text labels spans with ?path" `Quick (fun () ->
        let diags = Cvlint.lint_text ~path:"inline.yaml" "rules:\n  - tags: []\n" in
        check_has diags "CVL003" "inline.yaml" 2);
    Alcotest.test_case "suppressions" `Quick (fun () ->
        let text = "# cvlint-disable-file CVL040\nrules:\n  - config_name: ssl\n" in
        Alcotest.(check int) "file-wide" 0 (List.length (Cvlint.lint_text text));
        let text =
          "rules:\n  # cvlint-disable-next-line CVL010\n  - config_name: ssl\n    \
           prefered_value: [\"on\"]\n    tags: [\"#x\"]\n"
        in
        (* next-line only shields its own line; the typo sits two lines
           below the annotation and must still be reported *)
        check_has (Cvlint.lint_text ~path:"f.yaml" text) "CVL010" "f.yaml" 4;
        let text =
          "rules:\n  - config_name: ssl\n    # cvlint-disable-next-line CVL010\n    \
           prefered_value: [\"on\"]\n    tags: [\"#x\"]\n"
        in
        Alcotest.(check int) "next-line" 0 (List.length (Cvlint.lint_text text)));
    Alcotest.test_case "overlapping rule queries are info (CVL061)" `Quick (fun () ->
        let text =
          "rules:\n\
          \  - config_name: server_tokens\n\
          \    config_path: [\"http\"]\n\
          \    preferred_value: [\"off\"]\n\
          \    tags: [\"#x\"]\n\
          \  - config_name: listen\n\
          \    config_path: [\"http/server\"]\n\
          \    preferred_value: [\"443 ssl\"]\n\
          \    tags: [\"#x\"]\n"
        in
        let diags = Cvlint.lint_text ~path:"overlap.yaml" text in
        check_has diags "CVL061" "overlap.yaml" 7;
        let d = List.find (fun (d : D.t) -> d.D.code.D.id = "CVL061") diags in
        Alcotest.(check string) "severity" "info"
          (D.severity_to_string d.D.code.D.severity);
        Alcotest.(check bool) "names the prefix rule" true
          (List.exists
             (fun sub -> sub = "\"server_tokens\"")
             (String.split_on_char ' ' d.D.message)));
    Alcotest.test_case "CVL061 skips same-rule, identical, and disjoint paths" `Quick
      (fun () ->
        let count text =
          List.length
            (List.filter
               (fun (d : D.t) -> d.D.code.D.id = "CVL061")
               (Cvlint.lint_text text))
        in
        (* alternates within one rule are one query, not an overlap *)
        Alcotest.(check int) "same rule" 0
          (count
             "rules:\n\
             \  - config_name: listen\n\
             \    config_path: [\"http\", \"http/server\"]\n\
             \    preferred_value: [\"443\"]\n\
             \    tags: [\"#x\"]\n");
        (* two rules reading the same section share an end node — equal,
           not nested, so nothing to report *)
        Alcotest.(check int) "identical paths" 0
          (count
             "rules:\n\
             \  - config_name: a\n\
             \    config_path: [\"http\"]\n\
             \    preferred_value: [\"1\"]\n\
             \    tags: [\"#x\"]\n\
             \  - config_name: b\n\
             \    config_path: [\"http\"]\n\
             \    preferred_value: [\"2\"]\n\
             \    tags: [\"#x\"]\n");
        Alcotest.(check int) "disjoint paths" 0
          (count
             "rules:\n\
             \  - config_name: a\n\
             \    config_path: [\"http\"]\n\
             \    preferred_value: [\"1\"]\n\
             \    tags: [\"#x\"]\n\
             \  - config_name: b\n\
             \    config_path: [\"mail\"]\n\
             \    preferred_value: [\"2\"]\n\
             \    tags: [\"#x\"]\n"));
    Alcotest.test_case "worst and fail-on ordering" `Quick (fun () ->
        Alcotest.(check bool) "info < warning" true
          (D.severity_rank D.Info < D.severity_rank D.Warning);
        Alcotest.(check (option string)) "worst of cvl013 chain" (Some "info")
          (Option.map D.severity_to_string (D.worst (lint "cvl013.yaml"))));
    Alcotest.test_case "sort deduplicates repeat lintings" `Quick (fun () ->
        let once = lint "cvl010.yaml" in
        Alcotest.(check int) "dedup" (List.length once)
          (List.length (D.sort (once @ once))));
    Alcotest.test_case "registry ids are unique and sorted" `Quick (fun () ->
        let ids = List.map (fun (c : D.code) -> c.D.id) D.registry in
        Alcotest.(check (list string)) "sorted uniquely" ids
          (List.sort_uniq String.compare ids);
        Alcotest.(check bool) "lookup by slug" true
          (D.find_code "unknown-keyword" = D.find_code "CVL010"));
  ]

let render_tests =
  [
    Alcotest.test_case "json carries code, span and summary" `Quick (fun () ->
        let json = Cvlint.Render.to_json (lint "cvl010.yaml") in
        let diags = Option.get (Jsonlite.member "diagnostics" json) in
        (match diags with
        | Jsonlite.Arr [ d ] ->
          Alcotest.(check (option string)) "code" (Some "CVL010")
            (Option.bind (Jsonlite.member "code" d) Jsonlite.get_str);
          Alcotest.(check (option (float 0.0))) "line" (Some 4.0)
            (Option.bind (Jsonlite.member "line" d) Jsonlite.get_num)
        | _ -> Alcotest.fail "expected exactly one diagnostic");
        let summary = Option.get (Jsonlite.member "summary" json) in
        Alcotest.(check (option (float 0.0))) "errors" (Some 1.0)
          (Option.bind (Jsonlite.member "errors" summary) Jsonlite.get_num));
    Alcotest.test_case "sarif run lists registry rules and results" `Quick (fun () ->
        let sarif = Cvlint.Render.to_sarif (lint "cvl010.yaml") in
        match Jsonlite.member "runs" sarif with
        | Some (Jsonlite.Arr [ run ]) ->
          let driver =
            Option.get
              (Option.bind (Jsonlite.member "tool" run) (Jsonlite.member "driver"))
          in
          (match Jsonlite.member "rules" driver with
          | Some (Jsonlite.Arr rules) ->
            Alcotest.(check int) "all registry codes" (List.length D.registry)
              (List.length rules)
          | _ -> Alcotest.fail "missing rules");
          (match Jsonlite.member "results" run with
          | Some (Jsonlite.Arr [ result ]) ->
            Alcotest.(check (option string)) "level" (Some "error")
              (Option.bind (Jsonlite.member "level" result) Jsonlite.get_str)
          | _ -> Alcotest.fail "expected one result")
        | _ -> Alcotest.fail "expected one run");
    Alcotest.test_case "summary line pluralization" `Quick (fun () ->
        Alcotest.(check string) "singular" "1 error, 0 warnings, 0 infos"
          (Cvlint.Render.summary_line (lint "cvl010.yaml")));
  ]

let keyword_tests =
  [
    Alcotest.test_case "hashtable lookup agrees with the list" `Quick (fun () ->
        List.iter
          (fun (k, g, _) ->
            Alcotest.(check bool) k true (Cvl.Keyword.is_keyword k);
            Alcotest.(check bool) (k ^ " group") true (Cvl.Keyword.group_of k = Some g))
          Cvl.Keyword.all;
        Alcotest.(check bool) "negative" false (Cvl.Keyword.is_keyword "not_a_keyword"));
    Alcotest.test_case "bounded edit distance" `Quick (fun () ->
        Alcotest.(check int) "equal" 0 (Cvl.Keyword.distance ~limit:3 "tags" "tags");
        Alcotest.(check int) "one deletion" 1
          (Cvl.Keyword.distance ~limit:3 "prefered_value" "preferred_value");
        Alcotest.(check bool) "over limit clamps" true
          (Cvl.Keyword.distance ~limit:2 "tags" "composite_rule_name" > 2));
    Alcotest.test_case "nearest" `Quick (fun () ->
        Alcotest.(check (option (pair string int))) "typo"
          (Some ("preferred_value", 1))
          (Cvl.Keyword.nearest "prefered_value");
        Alcotest.(check (option (pair string int))) "exact" (Some ("tags", 0))
          (Cvl.Keyword.nearest "tags");
        Alcotest.(check (option (pair string int))) "hopeless" None
          (Cvl.Keyword.nearest "zzzzzzzzzzzzzzzz"));
  ]

let shipped_tests =
  [
    Alcotest.test_case "embedded corpus lints clean" `Quick (fun () ->
        let diags = Cvlint.lint_corpus ~source:Rulesets.source () in
        let errors, warnings, _ = D.count diags in
        if errors > 0 || warnings > 0 then
          Alcotest.failf "shipped rulesets have findings:\n%s" (show diags));
    Alcotest.test_case "site_overrides chain lints clean" `Quick (fun () ->
        let diags = Cvlint.lint_file ~source:Rulesets.source "site_overrides/sshd.yaml" in
        let errors, warnings, _ = D.count diags in
        Alcotest.(check (pair int int)) "no errors or warnings" (0, 0) (errors, warnings);
        (* ...but the two intentional overrides are visible as infos *)
        Alcotest.(check int) "override infos" 2
          (List.length (List.filter (fun (d : D.t) -> d.D.code.D.id = "CVL013") diags)));
  ]

let suite = fixture_tests @ behavior_tests @ render_tests @ keyword_tests @ shipped_tests
