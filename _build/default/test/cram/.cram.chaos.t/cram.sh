  $ configvalidator validate -t host-good >/dev/null
  $ configvalidator validate -t host-good --chaos 42 >/dev/null
  $ configvalidator validate -t host-good --chaos 42 | grep 'ERR'
  $ configvalidator validate -t host-good --chaos 42 | tail -5
  $ configvalidator validate -t host-good --chaos 6 | tail -5
  $ configvalidator validate -t host-good --chaos 6 > a.txt
  $ configvalidator validate -t host-good --chaos 6 > b.txt
  $ cmp a.txt b.txt
  $ configvalidator validate -t host-good --chaos 6 --retry 0 | tail -5
  $ configvalidator validate -t host-good --chaos 42 -f json | grep '"degraded"'
  $ configvalidator validate -t host-good --chaos 42 -f junit | grep -c 'type="evaluate"'
