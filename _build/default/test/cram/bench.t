The scaling harness has a fast smoke mode so the jobs x cache sweep
cannot bit-rot: a small fleet, jobs in {1,2}, one timed repetition.
Timings vary by machine; the structure and the determinism verdict do
not.

  $ ../../bench/main.exe scaling --smoke --out smoke.json | grep -v ' s ' | grep -v speedup
  
  ==================================================================
  Scaling - 6-frame fleet, jobs x normalization cache (smoke)
  ==================================================================
  
  results identical across every jobs/cache setting: true
  wrote smoke.json


The emitted JSON carries one record per (jobs, cache) cell plus the
cold/warm normalization ablation.

  $ grep -c '"jobs"' smoke.json
  4
  $ grep -o '"deterministic": true' smoke.json
  "deterministic": true
  $ grep -o '"unique_files": [0-9]*' smoke.json
  "unique_files": 14

The lint benchmark has the same smoke mode. The finding counts are
deterministic (the corpus generator seeds exactly one typo'd keyword
per 25 rules); only the timings vary by machine.

  $ ../../bench/main.exe lint --smoke --lint-out lint_smoke.json | grep -v ' us ' | grep -v ' ms ' | grep -v ' ns ' | grep -v overhead
  
  ==================================================================
  Lint - cvlint static analysis over a 100-rule synthetic corpus (smoke)
  ==================================================================
  clean corpus findings: 0
  seeded corpus findings: 4 (4 seeded defects)
  wrote lint_smoke.json

  $ grep -o '"seeded_findings": 4' lint_smoke.json
  "seeded_findings": 4
  $ grep -o '"clean_findings": 0' lint_smoke.json
  "clean_findings": 0

The chaos benchmark replays three seeded fault plans over the full
corpus. Timings and per-seed counters vary only with the plan, never
the machine: the smoke assertion is that every run completes
degraded-but-total.

  $ ../../bench/main.exe chaos --smoke --chaos-out chaos_smoke.json | grep -v 'clean run:' | grep -v '^seed '
  
  ==================================================================
  Chaos - full corpus under seeded fault plans (smoke)
  ==================================================================
  every chaos run completed degraded-but-total: true
  wrote chaos_smoke.json


  $ grep -o '"all_runs_degraded_but_total": true' chaos_smoke.json
  "all_runs_degraded_but_total": true
  $ grep -c '"seed"' chaos_smoke.json
  3

The compile benchmark compares the interpreter against ahead-of-time
compiled rule programs on the embedded corpus and on a synthetic
path-heavy rule set. Timings and the measured speedup vary by machine;
the differential verdict does not.

  $ ../../bench/main.exe compile --smoke --compile-out compile_smoke.json | grep -v ' us ' | grep -v ' ms ' | grep -v ' ns ' | grep -v 'speedup target'
  
  ==================================================================
  Compile - ahead-of-time programs vs interpreter (smoke)
  ==================================================================
  results identical interpreted vs compiled: true
  wrote compile_smoke.json

  $ grep -o '"identical": true' compile_smoke.json | sort -u
  "identical": true
  $ grep -c '"speedup"' compile_smoke.json
  2
  $ grep -o '"corpus_diagnostics": 0' compile_smoke.json
  "corpus_diagnostics": 0

The fusion benchmark drives the interpreted, compiled, and fused
engines over the same workloads and counts tree-node visits from the
shared-walk instrumentation. Timings and visit totals vary with the
corpus; the engine-identity verdict and the visit ordering do not.

  $ ../../bench/main.exe fusion --smoke --fusion-out fusion_smoke.json | grep -v '^corpus ' | grep -v '^path-heavy ' | grep -v 'target'
  
  ==================================================================
  Fusion - whole-ruleset shared walk vs per-rule programs (smoke)
  ==================================================================
  results identical across engines: true
  fused visits fewer nodes than compiled on path-heavy: true
  wrote fusion_smoke.json

  $ grep -o '"identical": true' fusion_smoke.json | sort -u
  "identical": true
  $ grep -o '"path_heavy_fused_visits_below_compiled": true' fusion_smoke.json
  "path_heavy_fused_visits_below_compiled": true
  $ grep -c '"visits_fused"' fusion_smoke.json
  2

The daemon benchmark pushes the fleet through a warm in-process daemon
and compares against cold one-shot runs. The fleet shape and the
byte-identity verdict are deterministic; the timing lines and the
warm-vs-cold margin vary by machine (the runtest gate bounds them with
a generous floor).

  $ ../../bench/main.exe daemon --smoke --daemon-out daemon_smoke.json | grep -v '^warm ' | grep -v '^cold ' | grep -v '^sustained ' | grep -v 'beats cold' | grep -v '^concurrent '
  
  ==================================================================
  Daemon - warm jobs vs cold one-shot (smoke)
  ==================================================================
  fleet: 24 frames x 15 entities = 360 cells (3 jobs of 8 frames)
  daemon verdicts byte-identical to one-shot: true
  4 concurrent clients x 2 jobs: 2024 verdicts, byte-identical: true
  protocol: 5 v2 connection(s), bytes-on-wire ledger live
  wrote daemon_smoke.json


  $ grep -o '"identical": true' daemon_smoke.json
  "identical": true
  "identical": true
  $ grep -o '"cells": 360' daemon_smoke.json
  "cells": 360

The protocol benchmark races the v2 binary verdict codec against the
v1 JSON round-trip and replays a drifted fleet as incremental deltas.
The identity verdicts and the delta shape are deterministic; the
timing lines and raw byte totals (stream trailers carry wall-clock
fields) vary by machine, so they stay out of the golden.

  $ ../../bench/main.exe protocol --smoke --protocol-out protocol_smoke.json | grep -v '^codec: ' | grep -v '^jsonlite ' | grep -v '^delta stream '
  
  ==================================================================
  Protocol - v2 codec + incremental deltas (smoke)
  ==================================================================
  codec decode identical: true
  delta: 8 replicas, 1 drifted; 2 fresh verdict(s), 1358 spliced from baselines
  delta reassembly identical to full stream: true, to one-shot: true
  wrote protocol_smoke.json

  $ grep -o '"identical": true' protocol_smoke.json
  "identical": true
  "identical": true
  $ grep -o '"replicas": 8' protocol_smoke.json
  "replicas": 8

The bench refuses to guess at typos: an unknown section, an unknown
flag, or an output flag without its FILE argument all exit 2 with the
usage string instead of silently running nothing.

  $ ../../bench/main.exe daemno; echo "exit: $?"
  unknown section "daemno"
  usage: main.exe [SECTION...] [--smoke] [--out FILE] [--lint-out FILE] [--chaos-out FILE] [--compile-out FILE] [--fusion-out FILE] [--daemon-out FILE] [--cluster-out FILE] [--protocol-out FILE]
  sections: table1, table2, listing6, ablation-a, ablation-b, ablation-c, ablation-d, ablation-e, scaling, lint, chaos, compile, fusion, daemon, cluster, protocol
  exit: 2
  $ ../../bench/main.exe --frobnicate; echo "exit: $?"
  unknown flag "--frobnicate"
  usage: main.exe [SECTION...] [--smoke] [--out FILE] [--lint-out FILE] [--chaos-out FILE] [--compile-out FILE] [--fusion-out FILE] [--daemon-out FILE] [--cluster-out FILE] [--protocol-out FILE]
  sections: table1, table2, listing6, ablation-a, ablation-b, ablation-c, ablation-d, ablation-e, scaling, lint, chaos, compile, fusion, daemon, cluster, protocol
  exit: 2
  $ ../../bench/main.exe daemon --daemon-out; echo "exit: $?"
  flag --daemon-out needs a FILE argument
  usage: main.exe [SECTION...] [--smoke] [--out FILE] [--lint-out FILE] [--chaos-out FILE] [--compile-out FILE] [--fusion-out FILE] [--daemon-out FILE] [--cluster-out FILE] [--protocol-out FILE]
  sections: table1, table2, listing6, ablation-a, ablation-b, ablation-c, ablation-d, ablation-e, scaling, lint, chaos, compile, fusion, daemon, cluster, protocol
  exit: 2
