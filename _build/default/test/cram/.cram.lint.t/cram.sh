  $ configvalidator lint --rules-dir ../cvl_bad cvl010.yaml --format json
  $ configvalidator lint --rules-dir ../cvl_bad cvl042.yaml
  $ configvalidator lint --rules-dir ../cvl_bad cvl042.yaml --fail-on error
  $ configvalidator lint --rules-dir ../cvl_bad cvl060.yaml
  $ configvalidator lint --rules-dir ../cvl_bad cvl062.yaml
  $ configvalidator lint --rules-dir ../cvl_bad cvl070.yaml
  $ configvalidator lint --rules-dir ../cvl_bad cvl071.yaml
  $ configvalidator lint --rules-dir ../cvl_bad cvl072.yaml
  $ configvalidator lint --rules-dir ../cvl_bad no_such_file.yaml
  $ configvalidator lint --rules-dir ../cvl_bad/corpus
  $ configvalidator lint --rules-dir ../cvl_bad cvl010.yaml --format sarif | grep -c '"ruleId"'
