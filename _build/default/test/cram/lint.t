The lint JSON output is stable and machine-readable: every diagnostic
carries its code, severity, file:line span and (when the analyzer can
guess the fix) a suggestion.

  $ configvalidator lint --rules-dir ../cvl_bad cvl010.yaml --format json
  {
    "version": 1,
    "diagnostics": [
      {
        "file": "cvl010.yaml",
        "line": 4,
        "code": "CVL010",
        "name": "unknown-keyword",
        "severity": "error",
        "message": "unknown keyword \"prefered_value\"",
        "suggestion": "did you mean \"preferred_value\"?"
      }
    ],
    "summary": {
      "errors": 1,
      "warnings": 0,
      "infos": 0
    }
  }
  [1]

Warnings and errors gate differently: --fail-on error lets a
warnings-only file pass.

  $ configvalidator lint --rules-dir ../cvl_bad cvl042.yaml
  cvl042.yaml:6: warning CVL042 [missing-remediation]: high-severity rule "ssl" has no suggested_action or violation description
  0 errors, 1 warning, 0 infos
  [1]
  $ configvalidator lint --rules-dir ../cvl_bad cvl042.yaml --fail-on error
  cvl042.yaml:6: warning CVL042 [missing-remediation]: high-severity rule "ssl" has no suggested_action or violation description
  0 errors, 1 warning, 0 infos

A config_path literal the compile-time path parser rejects is flagged
where it is written (CVL060): at run time the rule would silently
contribute no nodes on every scan. The check shares the parser the
rule compiler uses, so linter and engine can never disagree on what
parses.

  $ configvalidator lint --rules-dir ../cvl_bad cvl060.yaml
  cvl060.yaml:5: error CVL060 [malformed-config-path]: config_path "Match[abc]" does not parse: malformed index in segment "Match[abc]"
      suggestion: segments are labels, label[n], * or **, separated by '/'
  1 error, 0 warnings, 0 infos
  [1]

A require_other_configs probe that can never be satisfied is flagged
too (CVL062): the compiler lowers an unparseable literal to a
constant-false gate, so the rule silently never fires — a one-shot run
pays that once, a resident daemon bakes the dead rule into its ruleset
until the next reload.

  $ configvalidator lint --rules-dir ../cvl_bad cvl062.yaml
  cvl062.yaml:7: warning CVL062 [unsatisfiable-require-probe]: require_other_configs probe "listen[" does not parse (malformed index in segment "listen["): the gate is constant-false and the rule can never fire
      suggestion: segments are labels, label[n], * or **, separated by '/'
  0 errors, 1 warning, 0 infos
  [1]

Fleet-scoped (scope: cluster) rules get their own checks, each anchored
at the offending token rather than the rule header. An aggregate no
evaluator implements errors on every run (CVL070):

  $ configvalidator lint --rules-dir ../cvl_bad cvl070.yaml
  cvl070.yaml:6: error CVL070 [unknown-cluster-aggregator]: unknown aggregate "equals_across"
      suggestion: did you mean "equal_across"?
  1 error, 0 warnings, 0 infos
  [1]

Frame bounds that confine a cross-frame aggregator to a single frame
make it vacuous, and an inverted min/max can never be satisfied
(CVL071):

  $ configvalidator lint --rules-dir ../cvl_bad cvl071.yaml
  cvl071.yaml:10: warning CVL071 [cluster-single-frame-query]: max_frames: 1 confines equal_across to at most one frame, so it always holds
      suggestion: cross-frame aggregators need at least two participating frames
  cvl071.yaml:15: warning CVL071 [cluster-single-frame-query]: min_frames: 5 exceeds max_frames: 3 — the quorum can never be satisfied
  0 errors, 2 warnings, 0 infos
  [1]

A referent set that can never hold a value makes every observed value a
violation; a referent on an aggregate that ignores it is dead weight
(CVL072):

  $ configvalidator lint --rules-dir ../cvl_bad cvl072.yaml
  cvl072.yaml:10: warning CVL072 [unsatisfiable-referent]: referent_config_path "advertised[" does not parse (malformed index in segment "advertised["): the referent set is empty and every observed value is a violation
      suggestion: segments are labels, label[n], * or **, separated by '/'
  cvl072.yaml:16: warning CVL072 [unsatisfiable-referent]: referent_config_path is ignored by aggregate equal_across
      suggestion: only exists_referent consults the referent set
  0 errors, 2 warnings, 0 infos
  [1]

An unreadable file is an input error, not a finding: the message goes
to stderr and the exit code is 2, distinct from exit 1 for bad rules.

  $ configvalidator lint --rules-dir ../cvl_bad no_such_file.yaml
  cannot read no_such_file.yaml: ../cvl_bad/no_such_file.yaml: No such file or directory
  [2]

A whole corpus lints through its manifest: manifest-level findings
(unknown keys, unknown lens, bad rule_type) and rule findings from every
referenced file arrive in one deterministically sorted report.

  $ configvalidator lint --rules-dir ../cvl_bad/corpus
  cvl032.yaml:5: warning CVL032 [dead-config-path]: config_path "net/ipv4/ip_forward" can never be produced by the flat sysctl lens
      suggestion: flat lenses address settings by dotted key, e.g. a.b.c
  cvl033.yaml:4: error CVL033 [unknown-entity]: composite expression references entity "mysq", absent from the manifest
  cvl050.yaml:5: warning CVL050 [flaky-plugin-no-fallback]: plugin "mysql_variables" is marked flaky in the manifest; declare on_plugin_failure: degrade (or error) so a fault does not abort the run
  manifest.yaml:11: warning CVL043 [bad-rule-type]: manifest stack: rule_type "composit" is not a CVL rule type
      suggestion: did you mean "composite"?
  manifest.yaml:14: error CVL030 [unknown-lens]: manifest web: lens "ngnix" is not in the registry
      suggestion: did you mean "nginx"?
  manifest.yaml:15: error CVL002 [manifest-error]: manifest web: unknown key "search_paths"
  manifest.yaml:17: error CVL002 [manifest-error]: manifest db: cvl_file is required
  4 errors, 3 warnings, 0 infos
  [1]

SARIF output carries the full rule registry plus one result per
finding.

  $ configvalidator lint --rules-dir ../cvl_bad cvl010.yaml --format sarif | grep -c '"ruleId"'
  1
