  $ configvalidator coverage | head -6
  $ configvalidator keywords | head -1
  $ configvalidator validate -t host-bad --only-violations | grep sshd
  $ configvalidator validate -t host-good --only-violations
  $ configvalidator validate -t host-bad --tag '#cisubuntu14.04_5.2.8' --only-violations
  $ configvalidator export-frame -t host-bad -o frame.json
  $ configvalidator validate --frame-file frame.json --only-violations | grep -c FAIL
  $ cat > rules.yaml <<'YAML'
  > rules:
  >   - config_name: PermitRootLogin
  >     preferred_value: ["no"]
  >     tags: ["#cis"]
  > YAML
  $ configvalidator lint rules.yaml
  $ cat > bad.yaml <<'YAML'
  > rules:
  >   - config_name: x
  >     prefered_value: ["no"]
  >     tags: ["#cis"]
  > YAML
  $ configvalidator lint bad.yaml
  $ configvalidator remediate -t docker-host-bad | tail -2
  $ configvalidator explain cisubuntu14.04_9.3.8 | grep '\*\*\*'
  $ mkdir -p site/component_configs
  $ cat > site/manifest.yaml <<'YAML'
  > sshd:
  >   enabled: True
  >   config_search_paths:
  >     - /etc/ssh
  >   cvl_file: "component_configs/sshd.yaml"
  >   lens: sshd
  > YAML
  $ cat > site/component_configs/sshd.yaml <<'YAML'
  > rules:
  >   - config_name: PermitRootLogin
  >     config_path: [""]
  >     file_context: ["sshd_config"]
  >     preferred_value: ["no"]
  >     not_matched_preferred_value_description: "root login enabled"
  >     tags: ["#site"]
  > YAML
  $ configvalidator validate -t host-bad --rules-dir site --only-violations
  $ configvalidator validate --help=plain | grep -A 3 -- '-j N'
  $ configvalidator validate --help=plain | grep -A 2 -- '--no-cache'
  $ configvalidator validate -t three-tier-bad -j 1 > seq.out 2>&1; echo exit=$?
  $ configvalidator validate -t three-tier-bad -j 4 > par.out 2>&1; echo exit=$?
  $ configvalidator validate -t three-tier-bad -j 4 --no-cache > nocache.out 2>&1; echo exit=$?
  $ cmp seq.out par.out && cmp seq.out nocache.out && echo identical
