  $ configvalidator export-frame -t host-bad -o frame.json
  $ configvalidator validated --socket v.sock > server.log 2>&1 &
  $ configvalidator validated-client --socket v.sock --wait 10 ping
  $ configvalidator validated-client --socket v.sock validate --frame-file frame.json > first.out
  $ tail -6 first.out
  $ configvalidator validated-client --socket v.sock validate --frame-file frame.json | grep '^engine'
  $ configvalidator validated-client --socket v.sock --protocol 1 validate --frame-file frame.json > v1.out
  $ configvalidator validated-client --socket v.sock --protocol 2 validate --frame-file frame.json > v2.out
  $ cmp v1.out v2.out && echo "v1 and v2 render identically"
  $ sed -i 's/PermitRootLogin yes/PermitRootLogin no/' frame.json
  $ configvalidator validated-client --socket v.sock revalidate --frame-file frame.json > reval.out
  $ tail -3 reval.out
  $ (sleep 1; sed -i 's/PermitRootLogin no/PermitRootLogin yes/' frame.json) &
  $ configvalidator validated-client --socket v.sock watch --frame-file frame.json --interval-ms 50 --max-events 1
  $ (sleep 1; sed -i 's/PermitRootLogin yes/PermitRootLogin no/' frame.json) &
  $ configvalidator validated-client --socket v.sock watch --full --frame-file frame.json --interval-ms 50 --max-events 1 > watch_full.out
  $ grep '^change:' watch_full.out
  $ grep -c '^\[' watch_full.out
  $ configvalidator validated-client --socket v.sock validate --frame-file frame.json --deadline-ms 0
  $ printf '0\n\n' | configvalidator validated-client --socket v.sock raw
  $ printf '999999999\n' | configvalidator validated-client --socket v.sock raw
  $ printf '12' | configvalidator validated-client --socket v.sock raw
  $ configvalidator validated-client --socket v.sock stats
  $ configvalidator validated-client --socket v.sock shutdown
  $ wait
  $ cat server.log
  $ test -S v.sock || echo socket removed
