  $ configvalidator export-frame -t host-bad -o frame.json
  $ configvalidator validated --socket v.sock > server.log 2>&1 &
  $ configvalidator validated-client --socket v.sock --wait 10 ping
  $ configvalidator validated-client --socket v.sock validate --frame-file frame.json > first.out
  $ tail -6 first.out
  $ configvalidator validated-client --socket v.sock validate --frame-file frame.json | grep '^engine'
  $ sed -i 's/PermitRootLogin yes/PermitRootLogin no/' frame.json
  $ configvalidator validated-client --socket v.sock revalidate --frame-file frame.json > reval.out
  $ tail -3 reval.out
  $ configvalidator validated-client --socket v.sock validate --frame-file frame.json --deadline-ms 0
  $ printf '0\n\n' | configvalidator validated-client --socket v.sock raw
  $ printf '999999999\n' | configvalidator validated-client --socket v.sock raw
  $ printf '12' | configvalidator validated-client --socket v.sock raw
  $ configvalidator validated-client --socket v.sock stats
  $ configvalidator validated-client --socket v.sock shutdown
  $ wait
  $ cat server.log
  $ test -S v.sock || echo socket removed
