  $ ../../bench/main.exe scaling --smoke --out smoke.json | grep -v ' s ' | grep -v speedup
  $ grep -c '"jobs"' smoke.json
  $ grep -o '"deterministic": true' smoke.json
  $ grep -o '"unique_files": [0-9]*' smoke.json
  $ ../../bench/main.exe lint --smoke --lint-out lint_smoke.json | grep -v ' us ' | grep -v ' ms ' | grep -v ' ns ' | grep -v overhead
  $ grep -o '"seeded_findings": 4' lint_smoke.json
  $ grep -o '"clean_findings": 0' lint_smoke.json
  $ ../../bench/main.exe chaos --smoke --chaos-out chaos_smoke.json | grep -v 'clean run:' | grep -v '^seed '
  $ grep -o '"all_runs_degraded_but_total": true' chaos_smoke.json
  $ grep -c '"seed"' chaos_smoke.json
  $ ../../bench/main.exe compile --smoke --compile-out compile_smoke.json | grep -v ' us ' | grep -v ' ms ' | grep -v ' ns ' | grep -v 'speedup target'
  $ grep -o '"identical": true' compile_smoke.json | sort -u
  $ grep -c '"speedup"' compile_smoke.json
  $ grep -o '"corpus_diagnostics": 0' compile_smoke.json
  $ ../../bench/main.exe fusion --smoke --fusion-out fusion_smoke.json | grep -v '^corpus ' | grep -v '^path-heavy ' | grep -v 'target'
  $ grep -o '"identical": true' fusion_smoke.json | sort -u
  $ grep -o '"path_heavy_fused_visits_below_compiled": true' fusion_smoke.json
  $ grep -c '"visits_fused"' fusion_smoke.json
  $ ../../bench/main.exe daemon --smoke --daemon-out daemon_smoke.json | grep -v '^warm ' | grep -v '^cold ' | grep -v '^sustained ' | grep -v 'beats cold' | grep -v '^concurrent '
  $ grep -o '"identical": true' daemon_smoke.json
  $ grep -o '"cells": 360' daemon_smoke.json
  $ ../../bench/main.exe protocol --smoke --protocol-out protocol_smoke.json | grep -v '^codec: ' | grep -v '^jsonlite ' | grep -v '^delta stream '
  $ grep -o '"identical": true' protocol_smoke.json
  $ grep -o '"replicas": 8' protocol_smoke.json
  $ ../../bench/main.exe daemno; echo "exit: $?"
  $ ../../bench/main.exe --frobnicate; echo "exit: $?"
  $ ../../bench/main.exe daemon --daemon-out; echo "exit: $?"
