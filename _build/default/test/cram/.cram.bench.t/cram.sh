  $ ../../bench/main.exe scaling --smoke --out smoke.json | grep -v ' s ' | grep -v speedup
  $ grep -c '"jobs"' smoke.json
  $ grep -o '"deterministic": true' smoke.json
  $ grep -o '"unique_files": [0-9]*' smoke.json
