(* The domain pool under Cvl.Validator's sharding: ordering, sequential
   fallback, exception propagation, reuse across calls. *)

let squares n = List.init n (fun i -> i * i)

let map_cases =
  [
    Alcotest.test_case "map preserves order and equals List.map" `Quick (fun () ->
        Pool.with_pool ~jobs:4 (fun p ->
            let xs = List.init 1000 Fun.id in
            Alcotest.(check (list int)) "squares" (squares 1000) (Pool.map p (fun x -> x * x) xs)));
    Alcotest.test_case "empty and singleton inputs" `Quick (fun () ->
        Pool.with_pool ~jobs:4 (fun p ->
            Alcotest.(check (list int)) "empty" [] (Pool.map p (fun x -> x) []);
            Alcotest.(check (list int)) "singleton" [ 9 ] (Pool.map p (fun x -> x * x) [ 3 ])));
    Alcotest.test_case "concat_map flattens in order" `Quick (fun () ->
        Pool.with_pool ~jobs:3 (fun p ->
            let xs = List.init 100 Fun.id in
            Alcotest.(check (list int))
              "pairs"
              (List.concat_map (fun x -> [ x; -x ]) xs)
              (Pool.concat_map p (fun x -> [ x; -x ]) xs)));
    Alcotest.test_case "iter visits every element exactly once" `Quick (fun () ->
        Pool.with_pool ~jobs:4 (fun p ->
            let visited = Atomic.make 0 in
            Pool.iter p (fun _ -> Atomic.incr visited) (List.init 257 Fun.id);
            Alcotest.(check int) "count" 257 (Atomic.get visited)));
    Alcotest.test_case "pool is reusable across calls" `Quick (fun () ->
        Pool.with_pool ~jobs:4 (fun p ->
            for n = 1 to 20 do
              let xs = List.init (n * 7) Fun.id in
              Alcotest.(check (list int)) "run" (List.map succ xs) (Pool.map p succ xs)
            done));
  ]

let fallback_cases =
  [
    Alcotest.test_case "jobs <= 1 runs sequentially on the caller" `Quick (fun () ->
        Pool.with_pool ~jobs:1 (fun p ->
            Alcotest.(check int) "jobs clamped" 1 (Pool.jobs p);
            let self = Domain.self () in
            let domains =
              Pool.map p (fun _ -> Domain.self ()) (List.init 50 Fun.id) |> List.sort_uniq compare
            in
            Alcotest.(check bool) "all on caller" true (domains = [ self ])));
    Alcotest.test_case "sequential pool behaves like List.map" `Quick (fun () ->
        let xs = List.init 100 Fun.id in
        Alcotest.(check (list int)) "map" (squares 100) (Pool.map Pool.sequential (fun x -> x * x) xs));
    Alcotest.test_case "negative jobs clamp to 1" `Quick (fun () ->
        Pool.with_pool ~jobs:(-3) (fun p -> Alcotest.(check int) "jobs" 1 (Pool.jobs p)));
    Alcotest.test_case "default_jobs is positive" `Quick (fun () ->
        Alcotest.(check bool) "positive" true (Pool.default_jobs () >= 1));
    Alcotest.test_case "shutdown pool falls back to sequential" `Quick (fun () ->
        let p = Pool.create ~jobs:4 in
        Pool.shutdown p;
        Pool.shutdown p;
        (* idempotent *)
        let xs = List.init 64 Fun.id in
        Alcotest.(check (list int)) "post-shutdown map" (List.map succ xs) (Pool.map p succ xs));
  ]

exception Boom of int

let exception_cases =
  [
    Alcotest.test_case "worker exception propagates to the caller" `Quick (fun () ->
        Pool.with_pool ~jobs:4 (fun p ->
            match Pool.map p (fun x -> if x = 321 then raise (Boom x) else x) (List.init 1000 Fun.id) with
            | _ -> Alcotest.fail "expected Boom"
            | exception Boom 321 -> ()));
    Alcotest.test_case "pool survives an exception" `Quick (fun () ->
        Pool.with_pool ~jobs:4 (fun p ->
            (try ignore (Pool.map p (fun _ -> failwith "boom") (List.init 100 Fun.id))
             with Failure _ -> ());
            let xs = List.init 100 Fun.id in
            Alcotest.(check (list int)) "still works" (List.map succ xs) (Pool.map p succ xs)));
    Alcotest.test_case "with_pool shuts down on exception" `Quick (fun () ->
        match Pool.with_pool ~jobs:2 (fun _ -> failwith "escape") with
        | () -> Alcotest.fail "expected Failure"
        | exception Failure _ -> ());
    Alcotest.test_case "map_results contains per-item failures" `Quick (fun () ->
        Pool.with_pool ~jobs:4 (fun p ->
            let xs = List.init 200 Fun.id in
            let rs = Pool.map_results p (fun x -> if x mod 50 = 17 then raise (Boom x) else x * x) xs in
            Alcotest.(check int) "length" 200 (List.length rs);
            List.iteri
              (fun i r ->
                match r with
                | Ok v -> Alcotest.(check int) "ok value" (i * i) v
                | Error (Boom n) -> Alcotest.(check int) "boom index" i n
                | Error e -> Alcotest.failf "unexpected exception %s" (Printexc.to_string e))
              rs;
            let failed = List.filter Result.is_error rs in
            Alcotest.(check int) "exactly the faulted items fail" 4 (List.length failed)));
    Alcotest.test_case "map_results on sequential pool matches parallel" `Quick (fun () ->
        let f x = if x = 3 then raise (Boom 3) else succ x in
        let xs = List.init 10 Fun.id in
        let seq = Pool.map_results Pool.sequential f xs in
        Pool.with_pool ~jobs:4 (fun p ->
            let par = Pool.map_results p f xs in
            List.iter2
              (fun a b ->
                match (a, b) with
                | Ok x, Ok y -> Alcotest.(check int) "ok" x y
                | Error (Boom x), Error (Boom y) -> Alcotest.(check int) "err" x y
                | _ -> Alcotest.fail "sequential and parallel disagree")
              seq par));
  ]

let sharing_cases =
  [
    Alcotest.test_case "concurrent callers from many domains serialize safely" `Quick
      (fun () ->
        (* Daemon sessions share one pool: four domains hammer the same
           pool at once, and every caller must get its own ordered
           results — the single published task slot is caller-locked. *)
        Pool.with_pool ~jobs:3 (fun p ->
            let run offset () =
              List.init 20 (fun round ->
                  let xs = List.init 200 (fun i -> offset + round + i) in
                  Pool.map p (fun x -> x * x) xs = List.map (fun x -> x * x) xs)
            in
            let callers = List.init 4 (fun d -> Domain.spawn (run (d * 10_000))) in
            let outcomes = List.concat_map Domain.join callers in
            Alcotest.(check int) "every call answered" 80 (List.length outcomes);
            Alcotest.(check bool) "every caller got its own results" true
              (List.for_all Fun.id outcomes)));
  ]

let suite = map_cases @ fallback_cases @ exception_cases @ sharing_cases
