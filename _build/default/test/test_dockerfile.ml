open Docksim

let base_image =
  Image.make ~reference:"ubuntu:14.04"
    [
      Layer.make ~id:"sha256:base" ~created_by:"base"
        [
          Layer.Add (Frames.File.make ~content:"root:x:0:0:root:/root:/bin/bash\n" "/etc/passwd");
          Layer.Add (Frames.File.make ~content:"# default vhost\n" "/etc/nginx/sites-enabled/default");
        ];
    ]

let resolve = function "ubuntu:14.04" -> Some base_image | _ -> None

let build ?context text =
  match Dockerfile.build ?context ~resolve ~reference:"test:latest" text with
  | Ok image -> image
  | Error e -> Alcotest.fail (Dockerfile.error_to_string e)

let build_err text =
  match Dockerfile.build ~resolve ~reference:"test:latest" text with
  | Ok _ -> Alcotest.fail "expected a build error"
  | Error e -> e

let nginx_conf = Frames.File.make ~mode:0o644 ~content:Scenarios.Webstack.good_nginx_conf "nginx.conf"

let cases =
  [
    Alcotest.test_case "FROM inherits base files and config" `Quick (fun () ->
        let image = build "FROM ubuntu:14.04\n" in
        let frame = Image.flatten image in
        Alcotest.(check bool) "passwd" true (Frames.Frame.exists frame "/etc/passwd"));
    Alcotest.test_case "COPY takes files from the context" `Quick (fun () ->
        let image =
          build ~context:[ ("nginx.conf", nginx_conf) ]
            "FROM ubuntu:14.04\nCOPY nginx.conf /etc/nginx/nginx.conf\n"
        in
        let frame = Image.flatten image in
        Alcotest.(check (option string)) "copied" (Some Scenarios.Webstack.good_nginx_conf)
          (Frames.Frame.read frame "/etc/nginx/nginx.conf"));
    Alcotest.test_case "RUN rm produces a whiteout" `Quick (fun () ->
        let image = build "FROM ubuntu:14.04\nRUN rm -f /etc/nginx/sites-enabled/default\n" in
        Alcotest.(check bool) "gone" false
          (Frames.Frame.exists (Image.flatten image) "/etc/nginx/sites-enabled/default"));
    Alcotest.test_case "RUN chmod/chown/echo/mkdir sequence" `Quick (fun () ->
        let image =
          build
            "FROM ubuntu:14.04\n\
             RUN mkdir -p /etc/app\n\
             RUN echo \"secret\" > /etc/app/key\n\
             RUN echo \"more\" >> /etc/app/key\n\
             RUN chmod 600 /etc/app/key\n\
             RUN chown 33:33 /etc/app/key\n"
        in
        let f = Option.get (Frames.Frame.stat (Image.flatten image) "/etc/app/key") in
        Alcotest.(check string) "content" "secret\nmore\n" f.Frames.File.content;
        Alcotest.(check int) "mode" 0o600 f.Frames.File.mode;
        Alcotest.(check string) "owner" "33:33" (Frames.File.ownership f));
    Alcotest.test_case "config instructions accumulate" `Quick (fun () ->
        let image =
          build
            "FROM ubuntu:14.04\n\
             USER nginx\n\
             EXPOSE 443/tcp\n\
             ENV MODE=prod\n\
             LABEL team=web\n\
             HEALTHCHECK CMD curl -f https://localhost/\n\
             ENTRYPOINT nginx\n\
             CMD -g 'daemon off;'\n"
        in
        Alcotest.(check string) "user" "nginx" image.Image.config.Image.user;
        Alcotest.(check (list int)) "ports" [ 443 ] image.Image.config.Image.exposed_ports;
        Alcotest.(check (option string)) "env" (Some "prod")
          (List.assoc_opt "MODE" image.Image.config.Image.env);
        Alcotest.(check bool) "healthcheck" true (image.Image.config.Image.healthcheck <> None));
    Alcotest.test_case "continuations and comments" `Quick (fun () ->
        let image =
          build "# build\nFROM ubuntu:14.04\nRUN echo \"a\" \\\n  > /etc/a\n"
        in
        Alcotest.(check (option string)) "joined" (Some "a\n")
          (Frames.Frame.read (Image.flatten image) "/etc/a"));
    Alcotest.test_case "one layer per instruction (docker history)" `Quick (fun () ->
        let image = build "FROM ubuntu:14.04\nRUN mkdir -p /x\nUSER nginx\n" in
        Alcotest.(check int) "layers" 3 (Image.layer_count image));
    Alcotest.test_case "errors carry line numbers" `Quick (fun () ->
        let e = build_err "FROM ubuntu:14.04\nCOPY missing.conf /etc/x\n" in
        Alcotest.(check int) "line" 2 e.Dockerfile.line;
        let e = build_err "RUN echo hi\n" in
        Alcotest.(check bool) "must start with FROM" true
          (Re.execp (Re.compile (Re.str "FROM")) e.Dockerfile.message);
        let e = build_err "FROM nowhere:1\n" in
        Alcotest.(check bool) "unknown base" true
          (Re.execp (Re.compile (Re.str "unknown base")) e.Dockerfile.message);
        let e = build_err "FROM ubuntu:14.04\nFROBNICATE x\n" in
        Alcotest.(check bool) "unsupported" true
          (Re.execp (Re.compile (Re.str "unsupported")) e.Dockerfile.message));
    Alcotest.test_case "built image validates end to end" `Quick (fun () ->
        (* Build a hardened nginx image from a Dockerfile and scan it:
           the pipeline the paper's Vulnerability Advisor runs on push. *)
        let image =
          build ~context:[ ("nginx.conf", nginx_conf) ]
            "FROM ubuntu:14.04\n\
             COPY nginx.conf /etc/nginx/nginx.conf\n\
             RUN rm -f /etc/nginx/sites-enabled/default\n\
             USER nginx\n\
             EXPOSE 443\n\
             HEALTHCHECK CMD curl -fk https://localhost/\n"
        in
        let run =
          Cvl.Validator.run ~source:Rulesets.source ~manifest:Rulesets.manifest
            [ Image.flatten image ]
        in
        let nginx_violations =
          Cvl.Report.violations run.Cvl.Validator.results
          |> List.filter (fun (r : Cvl.Engine.result) -> r.Cvl.Engine.entity = "nginx")
        in
        Alcotest.(check int) "clean nginx scan" 0 (List.length nginx_violations));
  ]

let suite = cases
