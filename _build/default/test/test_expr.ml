open Cvl

let parses name input expected_str =
  Alcotest.test_case name `Quick (fun () ->
      match Expr.parse input with
      | Ok ast -> Alcotest.(check string) "printed" expected_str (Expr.to_string ast)
      | Error e -> Alcotest.fail e)

let rejects name input =
  Alcotest.test_case name `Quick (fun () ->
      Alcotest.(check bool) "rejected" true (Result.is_error (Expr.parse input)))

let parse_cases =
  [
    parses "bare reference" "nginx.listen" "nginx.listen";
    parses "dotted key" "sysctl.net.ipv4.ip_forward" "sysctl.net.ipv4.ip_forward";
    parses "comparison" {|sshd.PermitRootLogin.VALUE == "no"|} {|sshd.PermitRootLogin.VALUE == "no"|};
    parses "inequality" {|a.b != "x"|} {|a.b != "x"|};
    parses "negation" "!sysctl.net.ipv4.ip_forward" "!sysctl.net.ipv4.ip_forward";
    parses "present attribute" "mysql.ssl-ca.PRESENT" "mysql.ssl-ca.PRESENT";
    parses "configpath form (paper listing 1)"
      {|mysql.ssl-ca.CONFIGPATH=[mysqld].VALUE == "/etc/mysql/cacert.pem"|}
      {|mysql.ssl-ca.CONFIGPATH=[mysqld].VALUE == "/etc/mysql/cacert.pem"|};
    parses "conjunction chain" "a.x && b.y && c.z" "a.x && b.y && c.z";
    parses "precedence and over or" "a.x || b.y && c.z" "a.x || b.y && c.z";
    parses "parens" "(a.x || b.y) && c.z" "(a.x || b.y) && c.z";
    rejects "missing entity" "listen";
    rejects "empty" "";
    rejects "dangling operator" "a.x &&";
    rejects "unterminated string" {|a.x == "oops|};
    rejects "unbalanced paren" "(a.x";
    rejects "string without comparison" {|"alone"|};
  ]

let env_of_configs rules configs =
  {
    Expr.lookup_rule =
      (fun ~entity ~rule -> List.assoc_opt (entity, rule) rules);
    Expr.lookup_config =
      (fun ~entity ~key ~subpath ->
        List.assoc_opt (entity, key, subpath) configs);
  }

let eval name ~rules ~configs input expected =
  Alcotest.test_case name `Quick (fun () ->
      let env = env_of_configs rules configs in
      Alcotest.(check bool) "eval" expected (Expr.eval env (Expr.parse_exn input)))

let eval_cases =
  [
    eval "rule ref true" ~rules:[ (("nginx", "listen"), true) ] ~configs:[] "nginx.listen" true;
    eval "rule ref false" ~rules:[ (("nginx", "listen"), false) ] ~configs:[] "nginx.listen" false;
    eval "rule lookup beats config" ~rules:[ (("e", "k"), false) ]
      ~configs:[ (("e", "k", None), "1") ]
      "e.k" false;
    eval "config fallback truthy" ~rules:[] ~configs:[ (("sysctl", "a.b", None), "1") ] "sysctl.a.b" true;
    eval "config fallback falsy zero" ~rules:[] ~configs:[ (("sysctl", "a.b", None), "0") ] "sysctl.a.b" false;
    eval "missing ref is false" ~rules:[] ~configs:[] "x.y" false;
    eval "value comparison" ~rules:[] ~configs:[ (("m", "ssl-ca", Some "mysqld"), "/etc/ca.pem") ]
      {|m.ssl-ca.CONFIGPATH=[mysqld].VALUE == "/etc/ca.pem"|} true;
    eval "comparison on missing value is false for ==" ~rules:[] ~configs:[]
      {|m.k.VALUE == "x"|} false;
    eval "comparison on missing value is false for !=" ~rules:[] ~configs:[]
      {|m.k.VALUE != "x"|} false;
    eval "present attribute" ~rules:[] ~configs:[ (("e", "k", None), "0") ] "e.k.PRESENT" true;
    eval "negation" ~rules:[] ~configs:[ (("e", "k", None), "1") ] "!e.k" false;
    eval "and short" ~rules:[ (("a", "x"), true); (("b", "y"), false) ] ~configs:[] "a.x && b.y" false;
    eval "or" ~rules:[ (("a", "x"), false); (("b", "y"), true) ] ~configs:[] "a.x || b.y" true;
    Alcotest.test_case "entities listing" `Quick (fun () ->
        let ast = Expr.parse_exn "a.x && (b.y || !c.z)" in
        Alcotest.(check (list string)) "entities" [ "a"; "b"; "c" ] (Expr.entities ast));
    Alcotest.test_case "truthy_value table" `Quick (fun () ->
        List.iter
          (fun (v, expected) -> Alcotest.(check bool) v expected (Expr.truthy_value v))
          [ ("", false); ("0", false); ("no", false); ("off", false); ("false", false);
            ("FALSE", false); ("1", true); ("yes", true); ("443 ssl", true) ]);
  ]

(* Round-trip property over generated ASTs. *)
let ident_gen = QCheck.Gen.(string_size ~gen:(char_range 'a' 'e') (int_range 1 4))

let ref_gen =
  QCheck.Gen.(
    let* entity = ident_gen in
    let* item = ident_gen in
    let* subpath = opt ident_gen in
    let* attr =
      oneofl
        (match subpath with
        | Some _ -> [ Expr.Value; Expr.Present ]
        (* A bare CONFIGPATH-less ref prints identically for Default. *)
        | None -> [ Expr.Default; Expr.Value; Expr.Present ])
    in
    return { Expr.entity; item; subpath; attr })

let expr_gen =
  QCheck.Gen.(
    let rec go depth =
      if depth = 0 then
        oneof
          [
            map (fun r -> Expr.Ref r) ref_gen;
            map2 (fun r s -> Expr.Cmp (r, Expr.Eq, s)) ref_gen ident_gen;
            map2 (fun r s -> Expr.Cmp (r, Expr.Neq, s)) ref_gen ident_gen;
          ]
      else
        frequency
          [
            (2, go 0);
            (1, map (fun e -> Expr.Not e) (go (depth - 1)));
            (1, map2 (fun a b -> Expr.And (a, b)) (go (depth - 1)) (go (depth - 1)));
            (1, map2 (fun a b -> Expr.Or (a, b)) (go (depth - 1)) (go (depth - 1)));
          ]
    in
    go 3)

let rec expr_equal a b =
  match (a, b) with
  | Expr.Ref r1, Expr.Ref r2 -> r1 = r2
  | Expr.Cmp (r1, o1, s1), Expr.Cmp (r2, o2, s2) -> r1 = r2 && o1 = o2 && s1 = s2
  | Expr.Not e1, Expr.Not e2 -> expr_equal e1 e2
  | Expr.And (a1, b1), Expr.And (a2, b2) | Expr.Or (a1, b1), Expr.Or (a2, b2) ->
    expr_equal a1 a2 && expr_equal b1 b2
  | _ -> false

let roundtrip_prop =
  QCheck.Test.make ~count:500 ~name:"expr to_string/parse roundtrip"
    (QCheck.make ~print:Expr.to_string expr_gen)
    (fun e ->
      match Expr.parse (Expr.to_string e) with
      | Ok e' -> expr_equal e e'
      | Error msg -> QCheck.Test.fail_reportf "reparse failed: %s" msg)

let suite = parse_cases @ eval_cases @ [ QCheck_alcotest.to_alcotest roundtrip_prop ]
