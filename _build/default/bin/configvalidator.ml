(* ConfigValidator command-line interface.

   The sealed build has no live hosts or Docker daemon to crawl, so
   validation targets are the synthetic entities from the scenarios
   library — the same frames the paper's production system would obtain
   from the agentless crawler. Rules default to the embedded 135-rule
   corpus; --rules-dir switches to CVL files on disk. *)

let targets =
  [
    ("host-good", fun () -> [ Scenarios.Host.compliant () ]);
    ("host-bad", fun () -> [ Scenarios.Host.misconfigured () ]);
    ("nginx-image-good", fun () -> [ Scenarios.Webstack.nginx_image_frame ~compliant:true ]);
    ("nginx-image-bad", fun () -> [ Scenarios.Webstack.nginx_image_frame ~compliant:false ]);
    ("mysql-image-good", fun () -> [ Scenarios.Webstack.mysql_image_frame ~compliant:true ]);
    ("mysql-image-bad", fun () -> [ Scenarios.Webstack.mysql_image_frame ~compliant:false ]);
    ("nginx-container-good", fun () -> [ Scenarios.Webstack.nginx_container_frame ~compliant:true ]);
    ("nginx-container-bad", fun () -> [ Scenarios.Webstack.nginx_container_frame ~compliant:false ]);
    ("mysql-container-good", fun () -> [ Scenarios.Webstack.mysql_container_frame ~compliant:true ]);
    ("mysql-container-bad", fun () -> [ Scenarios.Webstack.mysql_container_frame ~compliant:false ]);
    ("docker-host-good", fun () -> [ Scenarios.Dockerhost.compliant () ]);
    ("docker-host-bad", fun () -> [ Scenarios.Dockerhost.misconfigured () ]);
    ("cloud-good", fun () -> [ Scenarios.Cloud.compliant_frame () ]);
    ("cloud-bad", fun () -> [ Scenarios.Cloud.misconfigured_frame () ]);
    ("three-tier-good", fun () -> Scenarios.Deployment.three_tier ~compliant:true);
    ("three-tier-bad", fun () -> Scenarios.Deployment.three_tier ~compliant:false);
    ("compose-good", fun () -> [ Scenarios.Orchestrator.compose_compliant () ]);
    ("compose-bad", fun () -> [ Scenarios.Orchestrator.compose_misconfigured () ]);
    ("k8s-good", fun () -> [ Scenarios.Orchestrator.k8s_compliant () ]);
    ("k8s-bad", fun () -> [ Scenarios.Orchestrator.k8s_misconfigured () ]);
    ("postgres-good", fun () -> [ Scenarios.Database.compliant () ]);
    ("postgres-bad", fun () -> [ Scenarios.Database.misconfigured () ]);
    ("apache-good", fun () -> [ Scenarios.Appserver.apache_compliant () ]);
    ("apache-bad", fun () -> [ Scenarios.Appserver.apache_misconfigured () ]);
    ("hadoop-good", fun () -> [ Scenarios.Appserver.hadoop_compliant () ]);
    ("hadoop-bad", fun () -> [ Scenarios.Appserver.hadoop_misconfigured () ]);
  ]

let source_and_manifest rules_dir =
  match rules_dir with
  | None -> Ok (Rulesets.source, Rulesets.manifest)
  | Some dir -> (
    let source = Cvl.Loader.file_source ~root:dir in
    match source.Cvl.Loader.load "manifest.yaml" with
    | Error e -> Error (Printf.sprintf "cannot read %s/manifest.yaml: %s" dir e)
    | Ok text -> (
      match Cvl.Manifest.parse text with
      | Ok manifest -> Ok (source, manifest)
      | Error e -> Error (Printf.sprintf "%s/manifest.yaml: %s" dir e)))

(* ------------------------------------------------------------------ *)
(* validate                                                            *)
(* ------------------------------------------------------------------ *)

(* Frames come from a named synthetic target, or from frame-snapshot
   JSON files exported by `export-frame` (or a real crawler). *)
let resolve_frames target frame_files =
  if frame_files <> [] then
    List.fold_left
      (fun acc file ->
        match acc with
        | Error _ as e -> e
        | Ok frames -> (
          match In_channel.with_open_text file In_channel.input_all with
          | exception Sys_error e -> Error e
          | text -> (
            match Frames.Codec.of_string text with
            | Ok frame -> Ok (frames @ [ frame ])
            | Error e -> Error (Printf.sprintf "%s: %s" file e))))
      (Ok []) frame_files
  else
    match List.assoc_opt target targets with
    | Some frames -> Ok (frames ())
    | None ->
      Error
        (Printf.sprintf "unknown target %S; available:\n  %s" target
           (String.concat "\n  " (List.map fst targets)))

(* Exit codes: 0 compliant, 2 violations, 3 infrastructure errors (a
   degraded run — engine errors, tripped breakers, contained
   exceptions). 3 wins over 2 so CI can tell "the target is bad" from
   "the scan itself is suspect". *)
let validate target frame_files tags format verbose only_violations rules_dir jobs no_cache chaos
    retry engine =
  match resolve_frames target frame_files with
  | Error e ->
    prerr_endline e;
    1
  | Ok frames -> (
    match source_and_manifest rules_dir with
    | Error e ->
      prerr_endline e;
      1
    | Ok (source, manifest) ->
      if no_cache then Cvl.Normcache.set_enabled false;
      (match retry with
      | Some n ->
        Cvl.Resilience.set_policy { (Cvl.Resilience.policy ()) with Cvl.Resilience.retries = n }
      | None -> ());
      (match chaos with
      | Some seed -> (
        match Cvl.Validator.load_rules ~source ~manifest with
        | Ok rules -> Faultsim.arm (Faultsim.sample ~seed ~rules frames)
        | Error _ -> ())
      | None -> ());
      let run = Cvl.Validator.run ~engine ~jobs ~tags ~source ~manifest frames in
      if chaos <> None then Faultsim.disarm ();
      List.iter
        (fun (entity, msg) -> Printf.eprintf "warning: rules for %s failed to load: %s\n" entity msg)
        run.Cvl.Validator.load_errors;
      (* Compile diagnostics: malformed path literals the interpreter
         used to swallow silently. Reported before the results, not
         fatal — the affected paths simply contribute no nodes. *)
      List.iter
        (fun d ->
          Printf.eprintf "warning: compile: %s\n" (Cvl.Compile.diagnostic_to_string d))
        run.Cvl.Validator.compile_diagnostics;
      let health = run.Cvl.Validator.health in
      let results =
        if only_violations then Cvl.Report.violations run.Cvl.Validator.results
        else run.Cvl.Validator.results
      in
      (match format with
      | `Text ->
        print_string (Cvl.Report.to_text ~verbose ~health results);
        print_endline (Cvl.Report.summary_line (Cvl.Report.summarize run.Cvl.Validator.results))
      | `Json -> print_string (Jsonlite.pretty (Cvl.Report.to_json ~health results))
      | `Junit -> print_string (Cvl.Report.to_junit ~health results));
      let s = Cvl.Report.summarize run.Cvl.Validator.results in
      if s.Cvl.Report.errors > 0 || health.Cvl.Resilience.degraded then 3
      else if s.Cvl.Report.violations > 0 then 2
      else 0)

(* ------------------------------------------------------------------ *)
(* coverage (Table 1)                                                  *)
(* ------------------------------------------------------------------ *)

let coverage () =
  let per_entity = Rulesets.all_rules () in
  let count entity = List.length (List.assoc entity per_entity) in
  let row group entities =
    Printf.printf "%-16s %s\n" group
      (String.concat ", " (List.map (fun e -> Printf.sprintf "%s (%d)" e (count e)) entities))
  in
  print_endline "Targets supported by ConfigValidator (paper Table 1):";
  row "Applications" Rulesets.applications;
  row "System services" Rulesets.system_services;
  row "Cloud services" Rulesets.cloud_services;
  Printf.printf "\n%d target types, %d rules in total\n"
    (List.length (Rulesets.applications @ Rulesets.system_services @ Rulesets.cloud_services))
    (Rulesets.paper_rule_count ());
  print_endline "\nChecklist adherence:";
  List.iter
    (fun entity -> Printf.printf "  %-10s %s\n" entity (Rulesets.standard_of entity))
    (Rulesets.applications @ Rulesets.system_services @ Rulesets.cloud_services);
  0

(* ------------------------------------------------------------------ *)
(* lint                                                                *)
(* ------------------------------------------------------------------ *)

(* Static analysis over CVL files (the cvlint library). With FILEs,
   each file and its parent_cvl_file chain is linted; without, the whole
   corpus is (manifest.yaml plus every rule file it references — the
   embedded rulesets unless --rules-dir points at a directory).

   Exit codes: 0 clean (below the --fail-on threshold), 1 findings at or
   above it, 2 unreadable input. Unreadable-input errors go to stderr. *)
let lint files format fail_on rules_dir lens =
  let module D = Cvlint.Diagnostic in
  let source =
    match rules_dir with
    | Some dir -> Cvl.Loader.file_source ~root:dir
    | None when files <> [] -> Cvl.Loader.file_source ~root:"."
    | None -> Rulesets.source
  in
  let unreadable path =
    match source.Cvl.Loader.load path with
    | Ok _ -> None
    | Error msg -> Some (Printf.sprintf "cannot read %s: %s" path msg)
  in
  let to_check = if files = [] then [ "manifest.yaml" ] else files in
  match List.filter_map unreadable to_check with
  | _ :: _ as errs ->
    List.iter prerr_endline errs;
    2
  | [] ->
    let diags =
      if files = [] then Cvlint.lint_corpus ~source ()
      else
        D.sort (List.concat_map (fun f -> Cvlint.lint_file ?lens ~source f) files)
    in
    (match format with
    | `Text ->
      print_string (Cvlint.Render.to_text diags);
      print_endline (Cvlint.Render.summary_line diags)
    | `Json -> print_string (Jsonlite.pretty (Cvlint.Render.to_json diags))
    | `Sarif -> print_string (Jsonlite.pretty (Cvlint.Render.to_sarif diags)));
    let threshold = match fail_on with `Warning -> D.Warning | `Error -> D.Error in
    (match D.worst diags with
    | Some w when D.severity_rank w >= D.severity_rank threshold -> 1
    | _ -> 0)

(* ------------------------------------------------------------------ *)
(* remediate                                                           *)
(* ------------------------------------------------------------------ *)

let remediate target rules_dir =
  match List.assoc_opt target targets with
  | None ->
    Printf.eprintf "unknown target %S\n" target;
    1
  | Some frames -> (
    match source_and_manifest rules_dir with
    | Error e ->
      prerr_endline e;
      1
    | Ok (source, manifest) ->
      let frames = frames () in
      let before =
        Cvl.Report.summarize (Cvl.Validator.run ~source ~manifest frames).Cvl.Validator.results
      in
      let _frames', reports, remaining = Cvl.Remediate.fixpoint ~source ~manifest frames in
      List.iter (fun r -> Format.printf "%a@." Cvl.Remediate.pp_report r) reports;
      Printf.printf "\nviolations before: %d\n" before.Cvl.Report.violations;
      Printf.printf "violations after:  %d (runtime-state findings need operational fixes)\n"
        (List.length remaining);
      List.iter
        (fun (r : Cvl.Engine.result) ->
          Printf.printf "  remaining: %s/%s — %s\n" r.Cvl.Engine.entity
            (Cvl.Rule.name r.Cvl.Engine.rule) r.Cvl.Engine.detail)
        remaining;
      0)

(* ------------------------------------------------------------------ *)
(* keywords                                                            *)
(* ------------------------------------------------------------------ *)

let keywords () =
  Printf.printf "CVL defines %d keywords:\n\n" Cvl.Keyword.count;
  List.iter
    (fun group ->
      Printf.printf "%s (%d):\n" (Cvl.Keyword.group_to_string group)
        (Cvl.Keyword.count_in_group group);
      List.iter
        (fun (name, g, meaning) ->
          if g = group then Printf.printf "  %-42s %s\n" name meaning)
        Cvl.Keyword.all;
      print_newline ())
    [ Cvl.Keyword.Common; Cvl.Keyword.Tree; Cvl.Keyword.Schema; Cvl.Keyword.Path;
      Cvl.Keyword.Script; Cvl.Keyword.Composite; Cvl.Keyword.Cluster ];
  0

(* ------------------------------------------------------------------ *)
(* rules-doc                                                           *)
(* ------------------------------------------------------------------ *)

(* A Markdown reference of the rule corpus: the artifact the paper hopes
   applications will one day ship ("configuration profiles possibly
   defined in CVL"). *)
let rules_doc () =
  let expectation_text label (e : Cvl.Rule.expectation option) =
    match e with
    | None -> []
    | Some { Cvl.Rule.values; match_spec } ->
      [
        Printf.sprintf "  - %s: `%s` (%s)" label
          (String.concat "`, `" values)
          (Cvl.Matcher.to_string match_spec);
      ]
  in
  print_endline "# ConfigValidator rule reference\n";
  List.iter
    (fun (entity, rules) ->
      Printf.printf "## %s — %s (%d rules)\n\n" entity (Rulesets.standard_of entity)
        (List.length rules);
      List.iter
        (fun rule ->
          let c = Cvl.Rule.common_of rule in
          Printf.printf "### `%s` (%s)\n\n" c.Cvl.Rule.name (Cvl.Rule.kind_to_string rule);
          if c.Cvl.Rule.description <> "" then Printf.printf "%s\n\n" c.Cvl.Rule.description;
          let details =
            match rule with
            | Cvl.Rule.Tree r ->
              (if r.Cvl.Rule.config_paths <> [ "" ] then
                 [ Printf.sprintf "  - path: `%s`" (String.concat "` | `" r.Cvl.Rule.config_paths) ]
               else [])
              @ expectation_text "preferred" r.Cvl.Rule.preferred
              @ expectation_text "non-preferred" r.Cvl.Rule.non_preferred
              @ (if r.Cvl.Rule.file_context <> [] then
                   [ Printf.sprintf "  - files: `%s`" (String.concat "`, `" r.Cvl.Rule.file_context) ]
                 else [])
            | Cvl.Rule.Schema r ->
              [ Printf.sprintf "  - query: `%s` with `%s`" r.Cvl.Rule.query_constraints
                  (String.concat "`, `" r.Cvl.Rule.query_constraints_value) ]
              @ expectation_text "preferred" r.Cvl.Rule.schema_preferred
              @ expectation_text "non-preferred" r.Cvl.Rule.schema_non_preferred
            | Cvl.Rule.Path r ->
              (match r.Cvl.Rule.ownership with
              | Some o -> [ Printf.sprintf "  - ownership: `%s`" o ]
              | None -> [])
              @ (match r.Cvl.Rule.permission with
                | Some p -> [ Printf.sprintf "  - permission ceiling: `%o`" p ]
                | None -> [])
            | Cvl.Rule.Script r ->
              [ Printf.sprintf "  - plugin: `%s`, path: `%s`" r.Cvl.Rule.plugin
                  (String.concat "` | `" r.Cvl.Rule.script_config_paths) ]
              @ expectation_text "preferred" r.Cvl.Rule.script_preferred
              @ expectation_text "non-preferred" r.Cvl.Rule.script_non_preferred
            | Cvl.Rule.Composite r ->
              [ Printf.sprintf "  - expression: `%s`" r.Cvl.Rule.expression ]
            | Cvl.Rule.Cluster r ->
              [ Printf.sprintf "  - aggregate: `%s`, path: `%s`" r.Cvl.Rule.aggregate
                  (String.concat "` | `" r.Cvl.Rule.cluster_config_paths) ]
              @ (match r.Cvl.Rule.referent_config_path with
                | Some p -> [ Printf.sprintf "  - referent: `%s`" p ]
                | None -> [])
              @ (match (r.Cvl.Rule.min_frames, r.Cvl.Rule.max_frames) with
                | None, None -> []
                | mn, mx ->
                  [ Printf.sprintf "  - frames: %s..%s"
                      (match mn with Some n -> string_of_int n | None -> "")
                      (match mx with Some n -> string_of_int n | None -> "") ])
          in
          List.iter print_endline details;
          if c.Cvl.Rule.suggested_action <> "" then
            Printf.printf "  - remediation: %s\n" c.Cvl.Rule.suggested_action;
          Printf.printf "  - tags: %s\n\n" (String.concat " " c.Cvl.Rule.tags))
        rules)
    (Rulesets.all_rules ());
  0

(* ------------------------------------------------------------------ *)
(* explain                                                             *)
(* ------------------------------------------------------------------ *)

(* Interactive Listing 6: show one of the 40 common CIS checks in every
   encoding the paper compares. *)
let explain check_id =
  match
    List.find_opt
      (fun (c : Checkir.Check.t) -> c.Checkir.Check.id = check_id)
      Checkir.Cis40.all
  with
  | None ->
    Printf.eprintf "unknown check %S; the 40 common checks are:\n" check_id;
    List.iter
      (fun (c : Checkir.Check.t) ->
        Printf.eprintf "  %-28s %s\n" c.Checkir.Check.id c.Checkir.Check.title)
      Checkir.Cis40.all;
    1
  | Some check ->
    let section title body =
      Printf.printf "******* %s [%d lines] *******\n%s\n" title
        (List.length
           (List.filter (fun l -> String.trim l <> "") (String.split_on_char '\n' body)))
        body
    in
    Printf.printf "%s — %s\n\n" check.Checkir.Check.id check.Checkir.Check.title;
    section "OpenSCAP: XCCDF/OVAL" (Scap.Xccdf.rule_to_xml check);
    section "ConfigValidator: YAML" (Checkir.To_cvl.rule check);
    section "Chef Inspec: Ruby (Expected)" (Inspeclite.Render.expected check);
    section "Chef Inspec: Ruby (Observed)" (Inspeclite.Render.observed check);
    section "ConfValley: CPL" (Confvalley.Cpl.render (Confvalley.Cpl.of_check check));
    0

(* ------------------------------------------------------------------ *)
(* cmdliner plumbing                                                   *)
(* ------------------------------------------------------------------ *)

open Cmdliner

let target_arg =
  let doc = "Validation target (a synthetic entity; see `validate --help` for the list)." in
  Arg.(value & opt string "three-tier-bad" & info [ "target"; "t" ] ~docv:"TARGET" ~doc)

let tags_arg =
  let doc = "Only evaluate rules carrying this tag (repeatable), e.g. --tag '#cis'." in
  Arg.(value & opt_all string [] & info [ "tag" ] ~docv:"TAG" ~doc)

let format_arg =
  let doc = "Output format: text, json, or junit." in
  Arg.(
    value
    & opt (enum [ ("text", `Text); ("json", `Json); ("junit", `Junit) ]) `Text
    & info [ "format"; "f" ] ~doc)

let frame_files_arg =
  let doc = "Validate a frame-snapshot JSON file instead of a synthetic target (repeatable)." in
  Arg.(value & opt_all file [] & info [ "frame-file" ] ~docv:"FILE" ~doc)

let verbose_arg =
  Arg.(value & flag & info [ "verbose"; "v" ] ~doc:"Include evidence and suggested actions.")

let only_violations_arg =
  Arg.(value & flag & info [ "only-violations" ] ~doc:"Report only failing checks.")

let rules_dir_arg =
  let doc = "Load manifest.yaml and CVL rule files from this directory instead of the embedded corpus." in
  Arg.(value & opt (some string) None & info [ "rules-dir" ] ~docv:"DIR" ~doc)

let jobs_arg =
  let doc =
    "Shard the frame $(b,x) entity validation grid across $(docv) parallel domains \
     (0 = one per core). Results are merged in a deterministic order, identical for \
     every job count."
  in
  Arg.(value & opt int 1 & info [ "jobs"; "j" ] ~docv:"N" ~doc)

let no_cache_arg =
  Arg.(
    value & flag
    & info [ "no-cache" ]
        ~doc:"Disable the content-addressed normalization cache (parse every file per frame).")

let chaos_arg =
  let doc =
    "Arm a seeded fault-injection plan before validating: unreadable/truncated/garbage \
     files, dead and transient plugins, evaluation faults. Deterministic per $(docv); \
     the run degrades instead of aborting and exits 3."
  in
  Arg.(value & opt (some int) None & info [ "chaos" ] ~docv:"SEED" ~doc)

let retry_arg =
  let doc = "Retry budget for faulted plugin calls (default 2; backoff is simulated)." in
  Arg.(value & opt (some int) None & info [ "retry" ] ~docv:"N" ~doc)

let engine_arg =
  let doc =
    "Evaluation engine: $(b,fused) (default; one shared tree walk per entity ruleset with \
     cross-rule query/plugin sharing), $(b,compiled) (per-rule ahead-of-time programs), or \
     $(b,interpreted). All three produce byte-identical reports; the non-default engines \
     exist for benchmarking and differential testing."
  in
  Arg.(
    value
    & opt
        (enum [ ("fused", `Fused); ("compiled", `Compiled); ("interpreted", `Interpreted) ])
        `Fused
    & info [ "engine" ] ~docv:"ENGINE" ~doc)

let validate_cmd =
  let doc = "validate a target against CVL rules" in
  Cmd.v
    (Cmd.info "validate" ~doc)
    Term.(
      const validate $ target_arg $ frame_files_arg $ tags_arg $ format_arg $ verbose_arg
      $ only_violations_arg $ rules_dir_arg $ jobs_arg $ no_cache_arg $ chaos_arg $ retry_arg
      $ engine_arg)

let coverage_cmd =
  Cmd.v (Cmd.info "coverage" ~doc:"print rule coverage (paper Table 1)") Term.(const coverage $ const ())

let lint_cmd =
  let files =
    let doc =
      "CVL rule files to lint (paths relative to --rules-dir when given). With no FILE, \
       lints the whole corpus: manifest.yaml and every rule file it references."
    in
    Arg.(value & pos_all string [] & info [] ~docv:"FILE" ~doc)
  in
  let lint_format =
    let doc = "Output format: text, json, or sarif." in
    Arg.(
      value
      & opt (enum [ ("text", `Text); ("json", `Json); ("sarif", `Sarif) ]) `Text
      & info [ "format"; "f" ] ~doc)
  in
  let fail_on =
    let doc = "Exit 1 when a finding of this severity (or worse) exists: warning or error." in
    Arg.(
      value
      & opt (enum [ ("warning", `Warning); ("error", `Error) ]) `Warning
      & info [ "fail-on" ] ~docv:"SEVERITY" ~doc)
  in
  let lens =
    let doc = "Lens the linted rules target; enables lens-aware checks (e.g. dead config_path)." in
    Arg.(value & opt (some string) None & info [ "lens" ] ~docv:"LENS" ~doc)
  in
  Cmd.v
    (Cmd.info "lint" ~doc:"statically analyze CVL rule files (cvlint)")
    Term.(const lint $ files $ lint_format $ fail_on $ rules_dir_arg $ lens)

let keywords_cmd =
  Cmd.v (Cmd.info "keywords" ~doc:"list the CVL vocabulary") Term.(const keywords $ const ())

let export_frame target out =
  match List.assoc_opt target targets with
  | None ->
    Printf.eprintf "unknown target %S\n" target;
    1
  | Some frames -> (
    match frames () with
    | [ frame ] ->
      let text = Frames.Codec.to_string frame in
      (match out with
      | Some path ->
        Out_channel.with_open_text path (fun oc -> Out_channel.output_string oc text);
        Printf.printf "wrote %s\n" path
      | None -> print_string text);
      0
    | frames ->
      Printf.eprintf "target has %d frames; export single-frame targets only\n" (List.length frames);
      1)

let explain_cmd =
  let check_id =
    Arg.(value & pos 0 string "cisubuntu14.04_9.3.8" & info [] ~docv:"CHECK_ID")
  in
  Cmd.v
    (Cmd.info "explain"
       ~doc:"show one of the 40 common CIS checks in every compared encoding (paper Listing 6)")
    Term.(const explain $ check_id)

let rules_doc_cmd =
  Cmd.v
    (Cmd.info "rules-doc" ~doc:"generate a Markdown reference of the rule corpus")
    Term.(const rules_doc $ const ())

let export_frame_cmd =
  let out =
    Arg.(value & opt (some string) None & info [ "output"; "o" ] ~docv:"FILE" ~doc:"Write to FILE.")
  in
  Cmd.v
    (Cmd.info "export-frame" ~doc:"export a target's configuration frame as snapshot JSON")
    Term.(const export_frame $ target_arg $ out)

let remediate_cmd =
  let doc = "derive and apply configuration fixes from the rules (advisory)" in
  Cmd.v (Cmd.info "remediate" ~doc) Term.(const remediate $ target_arg $ rules_dir_arg)

(* ------------------------------------------------------------------ *)
(* validated: long-running validation daemon + its client              *)
(* ------------------------------------------------------------------ *)

let validated socket rules_dir jobs quiet backlog max_connections max_inflight queue_depth
    deadline_ms idle_timeout_ms drain_ms =
  match source_and_manifest rules_dir with
  | Error e ->
    prerr_endline e;
    1
  | Ok (source, manifest) -> (
    let log = if quiet then fun _ -> () else fun m -> Printf.printf "validated: %s\n%!" m in
    let manifest_path = Option.map (fun d -> Filename.concat d "manifest.yaml") rules_dir in
    let config =
      {
        Daemon.Server.backlog;
        max_connections;
        max_inflight;
        queue_depth;
        deadline_ms;
        idle_timeout_ms;
        drain_ms;
      }
    in
    match Daemon.Server.create ~config ~jobs ~log ?manifest_path ~source ~manifest () with
    | Error e ->
      prerr_endline e;
      1
    | Ok server -> (
      match Daemon.Server.listen server ~socket_path:socket with
      | () ->
        Daemon.Server.destroy server;
        0
      | exception Unix.Unix_error (err, _, _) ->
        Daemon.Server.destroy server;
        Printf.eprintf "cannot serve on %s: %s\n" socket (Unix.error_message err);
        1))

let glyph_of_verdict = function
  | "matched" -> "PASS"
  | "not-matched" -> "FAIL"
  | "not-present" -> "MISS"
  | "not-applicable" -> "N/A "
  | _ -> "ERR "

let print_verdict (v : Daemon.Protocol.verdict) =
  Printf.printf "[%s] %-10s %-28s %s — %s\n"
    (glyph_of_verdict v.Daemon.Protocol.v_verdict)
    v.Daemon.Protocol.v_entity v.Daemon.Protocol.v_frame v.Daemon.Protocol.v_rule
    v.Daemon.Protocol.v_detail

(* The counter line matches the one-shot CLI's summary; the cache line
   is the daemon's warm-state observable (hits grow across jobs). *)
let print_stream_summary (s : Daemon.Protocol.summary) =
  Printf.printf "%d checks: %d passed, %d violations (%d missing), %d n/a, %d errors\n"
    s.Daemon.Protocol.s_total s.Daemon.Protocol.s_matched s.Daemon.Protocol.s_violations
    s.Daemon.Protocol.s_not_present s.Daemon.Protocol.s_not_applicable
    s.Daemon.Protocol.s_errors;
  Printf.printf "engine %s, cache %d hits / %d misses\n"
    (Daemon.Protocol.engine_to_string s.Daemon.Protocol.s_engine)
    s.Daemon.Protocol.s_cache_hits s.Daemon.Protocol.s_cache_misses;
  match s.Daemon.Protocol.s_revalidated with
  | Some [] -> print_endline "revalidated: (nothing)"
  | Some entities -> Printf.printf "revalidated: %s\n" (String.concat " " entities)
  | None -> ()

let summary_exit (s : Daemon.Protocol.summary) =
  if s.Daemon.Protocol.s_errors > 0 || s.Daemon.Protocol.s_degraded then 3
  else if s.Daemon.Protocol.s_violations > 0 then 2
  else 0

let print_stats verbose (st : Daemon.Protocol.stats) =
  Printf.printf "requests: %d\n" st.Daemon.Protocol.st_requests;
  Printf.printf "jobs: %d\n" st.Daemon.Protocol.st_jobs;
  Printf.printf "verdicts: %d\n" st.Daemon.Protocol.st_verdicts;
  Printf.printf "protocol-errors: %d\n" st.Daemon.Protocol.st_protocol_errors;
  Printf.printf "contained: %d\n" st.Daemon.Protocol.st_contained;
  Printf.printf "reloads: %d\n" st.Daemon.Protocol.st_reloads;
  Printf.printf "entities: %d\n" st.Daemon.Protocol.st_entities;
  Printf.printf "rules: %d\n" st.Daemon.Protocol.st_rules;
  Printf.printf "retained-frames: %d\n" st.Daemon.Protocol.st_retained_frames;
  Printf.printf "sessions: %d\n" st.Daemon.Protocol.st_sessions;
  Printf.printf "peak-sessions: %d\n" st.Daemon.Protocol.st_peak_sessions;
  Printf.printf "shed: %d\n" st.Daemon.Protocol.st_shed;
  Printf.printf "deadline-misses: %d\n" st.Daemon.Protocol.st_deadline_misses;
  Printf.printf "idle-reaped: %d\n" st.Daemon.Protocol.st_idle_reaped;
  Printf.printf "crashed: %d\n" st.Daemon.Protocol.st_crashed;
  Printf.printf "protocol-v1-connections: %d\n" st.Daemon.Protocol.st_v1_connections;
  Printf.printf "protocol-v2-connections: %d\n" st.Daemon.Protocol.st_v2_connections;
  Printf.printf "delta-streams: %d\n" st.Daemon.Protocol.st_delta_streams;
  if verbose then begin
    Printf.printf "delta-copied: %d\n" st.Daemon.Protocol.st_delta_copied;
    Printf.printf "v1-bytes-out: %d\n" st.Daemon.Protocol.st_v1_bytes_out;
    Printf.printf "v2-bytes-out: %d\n" st.Daemon.Protocol.st_v2_bytes_out;
    Printf.printf "p50: %.3f ms\n" st.Daemon.Protocol.st_p50_ms;
    Printf.printf "p99: %.3f ms\n" st.Daemon.Protocol.st_p99_ms;
    Printf.printf "mean: %.3f ms\n" st.Daemon.Protocol.st_mean_ms;
    Printf.printf "verdicts/sec: %.0f\n" st.Daemon.Protocol.st_verdicts_per_sec
  end

let load_frame_file path =
  match In_channel.with_open_text path In_channel.input_all with
  | exception Sys_error e -> Error e
  | text -> (
    match Frames.Codec.of_string text with
    | Ok frame -> Ok frame
    | Error e -> Error (Printf.sprintf "%s: %s" path e))

(* Pipe stdin's bytes to the socket verbatim and print every reply
   frame — the footgun-shaped op the protocol edge-case crams use to
   poke the reader with hand-crafted framing. *)
let raw_op socket wait =
  let give_up = Unix.gettimeofday () +. wait in
  let rec dial () =
    let sock = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    match Unix.connect sock (Unix.ADDR_UNIX socket) with
    | () -> Ok sock
    | exception Unix.Unix_error (e, _, _) ->
      (try Unix.close sock with Unix.Unix_error _ -> ());
      if Unix.gettimeofday () < give_up then begin
        Unix.sleepf 0.05;
        dial ()
      end
      else Error (Printf.sprintf "cannot connect to %s: %s" socket (Unix.error_message e))
  in
  match dial () with
  | Error m ->
    prerr_endline m;
    1
  | Ok sock ->
    let bytes = In_channel.input_all stdin in
    (try ignore (Unix.write_substring sock bytes 0 (String.length bytes))
     with Unix.Unix_error _ -> ());
    (try Unix.shutdown sock Unix.SHUTDOWN_SEND with Unix.Unix_error _ -> ());
    let ic = Unix.in_channel_of_descr sock in
    let rec pump () =
      match Daemon.Protocol.read_message ic with
      | Daemon.Protocol.Msg json ->
        print_endline (Jsonlite.to_string json);
        pump ()
      | Daemon.Protocol.Bad_payload m ->
        Printf.printf "bad-payload: %s\n" m;
        pump ()
      | Daemon.Protocol.Truncated m ->
        Printf.printf "truncated: %s\n" m;
        0
      | Daemon.Protocol.Closed -> 0
    in
    let code = pump () in
    close_in_noerr ic;
    code

let validated_client socket wait op protocol full target frame_files tags entities engine
    jobs chaos deadline_ms interval_ms max_events verbose =
  match op with
  | `Raw -> raw_op socket wait
  | (`Ping | `Shutdown | `Reload | `Stats | `Validate | `Revalidate | `Watch) as op -> (
  match Daemon.Client.connect ~protocol ~retry_for:wait socket with
  | Error e ->
    prerr_endline e;
    1
  | Ok c -> (
    let finish code =
      Daemon.Client.close c;
      code
    in
    let fail m =
      prerr_endline m;
      finish 1
    in
    match op with
    | `Ping -> (
      match Daemon.Client.ping c with
      | Ok () ->
        print_endline "pong";
        finish 0
      | Error m -> fail m)
    | `Shutdown -> (
      match Daemon.Client.shutdown c with
      | Ok () ->
        print_endline "server stopped";
        finish 0
      | Error m -> fail m)
    | `Reload -> (
      match Daemon.Client.reload_rules c with
      | Ok (entities, rules) ->
        Printf.printf "reloaded %d entities, %d rules\n" entities rules;
        finish 0
      | Error m -> fail m)
    | `Stats -> (
      match Daemon.Client.stats c with
      | Ok st ->
        print_stats verbose st;
        finish 0
      | Error m -> fail m)
    | `Validate -> (
      let inline =
        match target with
        | None -> Ok []
        | Some tgt -> (
          match List.assoc_opt tgt targets with
          | Some frames -> Ok (frames ())
          | None -> Error (Printf.sprintf "unknown target %S" tgt))
      in
      match inline with
      | Error m -> fail m
      | Ok [] when frame_files = [] -> fail "validate needs --target or --frame-file"
      | Ok frames -> (
        let job =
          Daemon.Protocol.job ~frames ~frame_files ~tags ~entities ~engine ~jobs ?chaos
            ?deadline_ms ()
        in
        match Daemon.Client.validate c ~on_verdict:print_verdict job with
        | Ok s ->
          print_stream_summary s;
          finish (summary_exit s)
        | Error m -> fail m))
    | `Revalidate -> (
      match frame_files with
      | [ file ] -> (
        match Daemon.Client.revalidate_file ~full c ~on_verdict:print_verdict file with
        | Ok s ->
          print_stream_summary s;
          finish (summary_exit s)
        | Error m -> fail m)
      | _ -> fail "revalidate needs exactly one --frame-file")
    | `Watch -> (
      match frame_files with
      | [ file ] -> (
        (* Under a v2 connection the default render shows only verdicts
           that actually crossed the wire (the changes); --full restores
           the every-verdict render v1 connections always get. *)
        let render_all = full || Daemon.Client.version c = Daemon.Protocol.json_version in
        let on_verdict v = if render_all then print_verdict v in
        let on_fresh v = if not render_all then print_verdict v in
        let outcome =
          Daemon.Client.watch c
            ~load:(fun () -> load_frame_file file)
            ~sleep:(fun () ->
              Unix.sleepf (float_of_int interval_ms /. 1000.0);
              true)
            ~max_events ~full ~on_verdict ~on_fresh
            ~on_event:(fun s delta ->
              let revalidated =
                match s.Daemon.Protocol.s_revalidated with
                | Some entities -> String.concat " " entities
                | None -> ""
              in
              let savings =
                match delta with
                | Some d when not d.Daemon.Client.d_full ->
                  Printf.sprintf " (delta: %d fresh, %d copied)"
                    (d.Daemon.Client.d_added + d.Daemon.Client.d_changed)
                    d.Daemon.Client.d_copied
                | _ -> ""
              in
              Printf.printf "change: revalidated [%s], %d violations, %d errors%s\n%!"
                revalidated s.Daemon.Protocol.s_violations s.Daemon.Protocol.s_errors savings)
            ()
        in
        match outcome with
        | Ok events ->
          Printf.printf "watched %d change(s)\n" events;
          finish 0
        | Error m -> fail m)
      | _ -> fail "watch needs exactly one --frame-file")))

let socket_arg =
  let doc = "Unix domain socket path the daemon serves on." in
  Arg.(required & opt (some string) None & info [ "socket" ] ~docv:"PATH" ~doc)

let validated_cmd =
  let doc = "run the long-lived validation daemon (engine-as-a-service)" in
  let quiet = Arg.(value & flag & info [ "quiet"; "q" ] ~doc:"Suppress the event log.") in
  let d = Daemon.Server.default_config in
  let backlog =
    Arg.(
      value
      & opt int d.Daemon.Server.backlog
      & info [ "backlog" ] ~docv:"N" ~doc:"listen(2) queue length for pending connections.")
  in
  let max_connections =
    Arg.(
      value
      & opt int d.Daemon.Server.max_connections
      & info [ "max-connections" ] ~docv:"N"
          ~doc:
            "Concurrent session cap; connections beyond it are answered with an overloaded \
             reply and closed.")
  in
  let max_inflight =
    Arg.(
      value
      & opt int d.Daemon.Server.max_inflight
      & info [ "max-inflight" ] ~docv:"N" ~doc:"Jobs allowed to run concurrently.")
  in
  let queue_depth =
    Arg.(
      value
      & opt int d.Daemon.Server.queue_depth
      & info [ "queue-depth" ] ~docv:"N"
          ~doc:"Jobs allowed to wait for a slot before shedding starts.")
  in
  let deadline_ms =
    Arg.(
      value
      & opt (some int) None
      & info [ "deadline-ms" ] ~docv:"MS"
          ~doc:
            "Default wall-clock budget per job; requests may override. Expiry answers with \
             an error reply.")
  in
  let idle_timeout_ms =
    Arg.(
      value
      & opt (some int) None
      & info [ "idle-timeout-ms" ] ~docv:"MS"
          ~doc:"Reap connections with no traffic for this long (default: never).")
  in
  let drain_ms =
    Arg.(
      value
      & opt int d.Daemon.Server.drain_ms
      & info [ "drain-ms" ] ~docv:"MS"
          ~doc:"How long a graceful shutdown waits for in-flight jobs before forcing.")
  in
  Cmd.v
    (Cmd.info "validated" ~doc)
    Term.(
      const validated $ socket_arg $ rules_dir_arg $ jobs_arg $ quiet $ backlog
      $ max_connections $ max_inflight $ queue_depth $ deadline_ms $ idle_timeout_ms
      $ drain_ms)

let validated_client_cmd =
  let doc = "talk to a running validated daemon" in
  let op =
    let ops =
      [
        ("ping", `Ping); ("validate", `Validate); ("revalidate", `Revalidate);
        ("stats", `Stats); ("reload-rules", `Reload); ("shutdown", `Shutdown);
        ("watch", `Watch); ("raw", `Raw);
      ]
    in
    Arg.(required & pos 0 (some (enum ops)) None & info [] ~docv:"OP" ~doc:"Operation.")
  in
  let wait =
    Arg.(
      value & opt float 5.0
      & info [ "wait" ] ~docv:"SECS" ~doc:"Keep retrying the connection this long.")
  in
  let protocol =
    let prefs = [ ("auto", `Auto); ("1", `V1); ("2", `V2) ] in
    Arg.(
      value
      & opt (enum prefs) `Auto
      & info [ "protocol" ] ~docv:"auto|1|2"
          ~doc:
            "Wire protocol: $(b,auto) offers v2 and falls back to framed JSON (v1) on old \
             servers; $(b,1) skips the handshake; $(b,2) requires the binary protocol.")
  in
  let full =
    Arg.(
      value & flag
      & info [ "full" ]
          ~doc:
            "Force full verdict streams (and full watch renders) instead of v2 incremental \
             deltas.")
  in
  let target =
    Arg.(
      value
      & opt (some string) None
      & info [ "target" ] ~docv:"TARGET" ~doc:"Validate a synthetic target inline.")
  in
  let entities =
    Arg.(
      value & opt_all string []
      & info [ "entity" ] ~docv:"NAME" ~doc:"Restrict to this entity (repeatable).")
  in
  let client_jobs =
    Arg.(
      value & opt int 0
      & info [ "jobs"; "j" ] ~docv:"N"
          ~doc:"Shard this job across N domains (default: the server's persistent pool).")
  in
  let deadline_ms =
    Arg.(
      value
      & opt (some int) None
      & info [ "deadline-ms" ] ~docv:"MS"
          ~doc:"Per-job wall-clock budget (overrides the server default).")
  in
  let interval_ms =
    Arg.(
      value & opt int 200
      & info [ "interval-ms" ] ~docv:"MS" ~doc:"Watch-mode poll interval.")
  in
  let max_events =
    Arg.(
      value & opt int max_int
      & info [ "max-events" ] ~docv:"N" ~doc:"Stop watch mode after N change events.")
  in
  Cmd.v
    (Cmd.info "validated-client" ~doc)
    Term.(
      const validated_client $ socket_arg $ wait $ op $ protocol $ full $ target
      $ frame_files_arg $ tags_arg $ entities $ engine_arg $ client_jobs $ chaos_arg
      $ deadline_ms $ interval_ms $ max_events $ verbose_arg)

let () =
  let info =
    Cmd.info "configvalidator" ~version:"1.0.0"
      ~doc:"declarative configuration validation for applications, systems and cloud"
  in
  exit
    (Cmd.eval'
       (Cmd.group info
          [
            validate_cmd; coverage_cmd; lint_cmd; keywords_cmd; remediate_cmd; export_frame_cmd;
            rules_doc_cmd; explain_cmd; validated_cmd; validated_client_cmd;
          ]))
