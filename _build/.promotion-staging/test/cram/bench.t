The scaling harness has a fast smoke mode so the jobs x cache sweep
cannot bit-rot: a small fleet, jobs in {1,2}, one timed repetition.
Timings vary by machine; the structure and the determinism verdict do
not.

  $ ../../bench/main.exe scaling --smoke --out smoke.json | grep -v ' s ' | grep -v 'speedup\|normalization:'
  
  ==================================================================
  Scaling - 6-frame fleet, jobs x normalization cache (smoke)
  ==================================================================
  
  results identical across every jobs/cache setting: true
  wrote smoke.json


The emitted JSON carries one record per (jobs, cache) cell plus the
cold/warm normalization ablation.

  $ grep -c '"jobs"' smoke.json
  4
  $ grep -o '"deterministic": true' smoke.json
  "deterministic": true
  $ grep -o '"cold_misses": [0-9]*' smoke.json
  "cold_misses": 16
