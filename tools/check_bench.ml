(* Bench gate: parse the machine-readable bench reports and fail the
   build when an engine stops being byte-identical or a speedup falls
   through the floor.

   Correctness checks (result identity, node-visit ordering) are exact:
   they are deterministic, so any failure is a real regression. Timing
   checks use floors well below the targets printed by the bench
   itself — smoke runs on shared CI hardware are noisy, and the gate
   exists to catch "the optimization stopped optimizing", not to
   re-certify the paper numbers.

   Usage:
     check_bench.exe BENCH_compile.json BENCH_fusion.json \
                     [BENCH_chaos.json [BENCH_daemon.json \
                     [BENCH_cluster.json [BENCH_protocol.json]]]] *)

let failures = ref 0

let check label ok =
  Printf.printf "%-60s %s\n" label (if ok then "ok" else "FAIL");
  if not ok then incr failures

let load file =
  match Jsonlite.parse (In_channel.with_open_text file In_channel.input_all) with
  | Ok json -> json
  | Error e ->
    Printf.eprintf "%s: %s\n" file (Jsonlite.error_to_string e);
    exit 2

let num json path =
  let rec go json = function
    | [] -> Jsonlite.get_num json
    | key :: rest -> Option.bind (Jsonlite.member key json) (fun j -> go j rest)
  in
  match go json path with
  | Some n -> n
  | None ->
    Printf.eprintf "missing numeric field %s\n" (String.concat "." path);
    exit 2

let flag json key = Jsonlite.member key json = Some (Jsonlite.Bool true)

let () =
  let compile_file, fusion_file, chaos_file, daemon_file, cluster_file, protocol_file =
    match Sys.argv with
    | [| _; c; f |] -> (c, f, None, None, None, None)
    | [| _; c; f; ch |] -> (c, f, Some ch, None, None, None)
    | [| _; c; f; ch; d |] -> (c, f, Some ch, Some d, None, None)
    | [| _; c; f; ch; d; cl |] -> (c, f, Some ch, Some d, Some cl, None)
    | [| _; c; f; ch; d; cl; p |] -> (c, f, Some ch, Some d, Some cl, Some p)
    | _ ->
      prerr_endline
        "usage: check_bench.exe BENCH_compile.json BENCH_fusion.json [BENCH_chaos.json \
         [BENCH_daemon.json [BENCH_cluster.json [BENCH_protocol.json]]]]";
      exit 2
  in
  let compile = load compile_file in
  let fusion = load fusion_file in

  (* Compiled engine vs interpreted (BENCH_compile.json). Both
     workloads are measured warm; the printed target for path-heavy is
     3x, the gate floor is far lower. *)
  let floor_path = if flag compile "smoke" then 1.2 else 2.0 in
  check "compile: results identical across engines" (flag compile "identical");
  check
    (Printf.sprintf "compile: path-heavy speedup >= %.1fx" floor_path)
    (num compile [ "path_heavy"; "speedup" ] >= floor_path);
  check "compile: corpus speedup >= 0.5x (no warm-path regression)"
    (num compile [ "corpus"; "speedup" ] >= 0.5);

  (* Fused engine vs compiled (BENCH_fusion.json). Node-visit counts
     are deterministic, so the shared-walk claim is gated exactly; the
     cold path-heavy wall-clock floor stays generous. *)
  let floor_fused = if flag fusion "smoke" then 1.2 else 2.0 in
  check "fusion: results identical across engines" (flag fusion "identical");
  check "fusion: path-heavy fused visits < compiled visits"
    (num fusion [ "path_heavy"; "visits_fused" ]
    < num fusion [ "path_heavy"; "visits_compiled" ]);
  check "fusion: corpus fused visits <= compiled visits"
    (num fusion [ "corpus"; "visits_fused" ]
    <= num fusion [ "corpus"; "visits_compiled" ]);
  check
    (Printf.sprintf "fusion: path-heavy fused vs compiled >= %.1fx" floor_fused)
    (num fusion [ "path_heavy"; "speedup_fused_vs_compiled" ] >= floor_fused);
  check "fusion: corpus fused vs compiled >= 0.5x (no warm-path regression)"
    (num fusion [ "corpus"; "speedup_fused_vs_compiled" ] >= 0.5);

  (* Chaos harness (BENCH_chaos.json). The invariant is exact: every
     seeded fault plan must complete degraded-but-total — faults fire,
     runs degrade, no run aborts. *)
  (match chaos_file with
  | None -> ()
  | Some file ->
    let chaos = load file in
    check "chaos: every run completed degraded-but-total" (flag chaos "all_runs_degraded_but_total");
    let runs = match Jsonlite.member "runs" chaos with Some (Jsonlite.Arr rs) -> rs | _ -> [] in
    check "chaos: three seeded fault plans recorded" (List.length runs = 3);
    check "chaos: every plan fired at least one fault"
      (runs <> [] && List.for_all (fun r -> num r [ "fired" ] > 0.0) runs));

  (* Warm daemon vs cold one-shot (BENCH_daemon.json). Verdict identity
     is exact; the warm-beats-cold floor is generous (the daemon pays
     the whole protocol cost: framing, codec, verdict streaming). *)
  (match daemon_file with
  | None -> ()
  | Some file ->
    let daemon = load file in
    let floor = if flag daemon "smoke" then 0.75 else 1.3 in
    check "daemon: streamed verdicts identical to one-shot" (flag daemon "identical");
    check
      (Printf.sprintf "daemon: warm job vs cold one-shot >= %.2fx" floor)
      (num daemon [ "speedup_warm_vs_cold" ] >= floor);
    check "daemon: sustained verdicts/sec recorded" (num daemon [ "verdicts_per_sec" ] > 0.0);
    check "daemon: latency percentiles ordered (p50 <= p99)"
      (num daemon [ "p50_ms" ] <= num daemon [ "p99_ms" ]);
    check "daemon: full fleet covers >= 100k cells"
      (flag daemon "smoke" || num daemon [ "cells" ] >= 100000.0);
    (* Concurrent serving (the "concurrent" section). Stream identity
       under concurrency is exact — losing it means the session model
       broke determinism, a hard failure. The scaling floor is far
       below linear: a one-core container can at best hold single-client
       throughput, so the gate only catches a collapse under the
       admission/session locks. *)
    let conc = [ "concurrent" ] in
    let scaling_floor = num daemon (conc @ [ "scaling_floor" ]) in
    check "daemon-concurrent: streams byte-identical under load"
      (Jsonlite.member "concurrent" daemon
      |> Option.map (fun j -> flag j "identical")
      |> Option.value ~default:false);
    check
      (Printf.sprintf "daemon-concurrent: >= %.2fx of single-client throughput" scaling_floor)
      (num daemon (conc @ [ "scaling_ratio" ]) >= scaling_floor);
    check "daemon-concurrent: p99 under load recorded"
      (num daemon (conc @ [ "p99_ms" ]) > 0.0);
    check "daemon-concurrent: several sessions actually served"
      (num daemon (conc @ [ "clients" ]) >= 2.0
      && num daemon (conc @ [ "verdicts" ]) > 0.0);
    (* Bench clients negotiate protocol v2, so the stats ledger must
       show upgraded connections and bytes on the v2 side. *)
    check "daemon: stats report v2 connections and bytes"
      (num daemon [ "protocol"; "v2_connections" ] >= 1.0
      && num daemon [ "protocol"; "v2_bytes_out" ] > 0.0));

  (* Fleet-scoped cluster rules (BENCH_cluster.json). All three claims
     are deterministic, so they gate exactly: the engines stay
     byte-identical with cluster rules in the ruleset, a seeded drift
     is flagged, and verdicts are invariant in frame arrival order. *)
  (match cluster_file with
  | None -> ()
  | Some file ->
    let cluster = load file in
    check "cluster: results identical across the three engines" (flag cluster "identical");
    check "cluster: seeded cache drift detected" (flag cluster "detects_drift");
    check "cluster: verdicts invariant in frame arrival order" (flag cluster "order_invariant");
    check "cluster: fleet large enough to exercise aggregation"
      (num cluster [ "frames" ] >= if flag cluster "smoke" then 8.0 else 256.0);
    check "cluster: sustained verdicts/sec recorded" (num cluster [ "verdicts_per_sec" ] > 0.0));

  (* Protocol v2 (BENCH_protocol.json). Decode identity is exact on
     both claims — a codec or a delta splice that loses a byte is a
     hard failure. The codec speedup floor and the delta byte ceiling
     are the PR's gated perf claims; the bench records its own floor
     (lower under --smoke, where the measurement quota is tiny). *)
  (match protocol_file with
  | None -> ()
  | Some file ->
    let protocol = load file in
    let codec = match Jsonlite.member "codec" protocol with Some j -> j | None -> Jsonlite.Null in
    let delta = match Jsonlite.member "delta" protocol with Some j -> j | None -> Jsonlite.Null in
    let codec_floor = num codec [ "speedup_floor" ] in
    check "protocol: v2 codec decode identical to encode input" (flag codec "identical");
    check
      (Printf.sprintf "protocol: v2 codec >= %.1fx of v1 JSON round-trip" codec_floor)
      (num codec [ "speedup" ] >= codec_floor);
    check "protocol: jsonlite reused-buffer datapoint recorded"
      (num protocol [ "jsonlite"; "fresh_us" ] > 0.0
      && num protocol [ "jsonlite"; "reused_us" ] > 0.0);
    let ceiling = num delta [ "ratio_ceiling" ] in
    check "protocol: delta reassembly identical to full stream + one-shot"
      (flag delta "identical");
    check
      (Printf.sprintf "protocol: delta stream <= %.0f%% of full stream bytes" (ceiling *. 100.0))
      (num delta [ "ratio" ] <= ceiling);
    check "protocol: the drift actually crossed the wire"
      (num delta [ "fresh_verdicts" ] >= 1.0 && num delta [ "copied_verdicts" ] > 0.0));

  if !failures > 0 then (
    Printf.eprintf "check_bench: %d check(s) failed\n" !failures;
    exit 1)
